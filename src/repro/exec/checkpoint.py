"""JSONL trial checkpointing shared by every executor backend.

One :class:`TrialCheckpoint` owns the on-disk lifecycle of a single grid
point's results file: a ``{"spec": ...}`` header line followed by one
``{"trial": i, "record": ...}`` line per finished trial.  Records are
appended (and flushed) as they finish, an existing file is used to skip
already-finished trial indices on resume, and a completed file is rewritten
in canonical trial-sorted order -- so the bytes on disk are identical for
any executor backend, worker count or interruption history.

The format predates this module (it is the
:class:`~repro.fault.runner.CampaignRunner` checkpoint format, unchanged), so
old results files resume seamlessly under the new engine and vice versa.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Sequence

from repro.fault.runner import CampaignSpec, _canonical_json, _resume_key

#: A per-trial record: a JSON-serialisable mapping produced by a trial kernel.
TrialRecord = dict


def campaign_results_path(results_dir: str | Path, index: int, spec: CampaignSpec) -> Path:
    """Checkpoint file of one expanded campaign inside a sweep directory."""
    slug = "".join(c if c.isalnum() or c in "=,._-" else "_" for c in spec.label)
    return Path(results_dir) / f"{index:03d}-{slug}.jsonl"


class TrialCheckpoint:
    """Append/resume/canonicalise the JSONL results file of one campaign."""

    def __init__(self, spec: CampaignSpec, path: str | Path | None) -> None:
        self.spec = spec
        self.path = Path(path) if path is not None else None
        self._sink = None

    # ------------------------------------------------------------------ #
    def load(self) -> dict[int, TrialRecord]:
        """Records already on disk, keyed by trial index (resume state).

        Raises if the file belongs to a different campaign spec (everything
        but the cosmetic ``name`` label and the extendable ``n_trials`` count
        participates in the identity check -- trial records are
        count-invariant, so a file written at one ``n_trials`` resumes under
        another).  Also raises if the file holds records *past* the spec's
        trial count: they are committed trial data, and completing the run
        would canonically rewrite the file without them -- a spec whose
        ``n_trials`` shrank must not silently destroy results.  Torn lines
        from an interrupted write are skipped and recomputed.
        """
        if self.path is None or not self.path.exists():
            return {}
        spec_dict, records = parse_results_text(self.path.read_text())
        if spec_dict is not None and _resume_key(spec_dict) != _resume_key(self.spec.to_dict()):
            raise ValueError(
                f"{self.path} holds results for a different "
                "campaign spec; refusing to resume"
            )
        extra = sorted(i for i in records if i >= self.spec.n_trials)
        if extra:
            raise ValueError(
                f"{self.path} holds {len(records)} committed trial records up "
                f"to index {max(records)}, but the spec asks for only "
                f"{self.spec.n_trials} trials; refusing to resume (completing "
                "the run would rewrite the file and destroy the "
                f"{len(extra)} records past the spec count -- raise n_trials "
                "or point the run at a fresh results path)"
            )
        return dict(records)

    # ------------------------------------------------------------------ #
    def open(self, header: bool):
        """Open the append sink (writing the spec header on a fresh file)."""
        if self.path is None:
            return None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        sink = self.path.open("a")
        if sink.tell() == 0:
            if header:
                sink.write(_canonical_json({"spec": self.spec.to_dict()}) + "\n")
                sink.flush()
        else:
            # A kill mid-write can leave a torn final line without a newline;
            # start appended records on a fresh line so they stay parseable.
            # Probe only the last byte -- the file can be huge.
            with self.path.open("rb") as existing:
                existing.seek(-1, os.SEEK_END)
                last_byte = existing.read(1)
            if last_byte != b"\n":
                sink.write("\n")
                sink.flush()
        self._sink = sink
        return sink

    def append(self, index: int, record: TrialRecord, sink=None) -> None:
        """Checkpoint one finished trial (flushed immediately)."""
        sink = sink if sink is not None else self._sink
        if sink is None:
            return
        sink.write(_canonical_json({"trial": index, "record": record}) + "\n")
        sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # ------------------------------------------------------------------ #
    def write_canonical(self, ordered: Sequence[TrialRecord]) -> None:
        """Rewrite the completed file in canonical trial-sorted order.

        The header's ``n_trials`` is rewritten to the count actually on disk,
        so an adaptively stopped (or topped-up) point reads back as a
        complete, self-consistent campaign.  For fixed-count runs
        ``len(ordered) == spec.n_trials`` and the bytes are unchanged.
        """
        if self.path is None:
            return
        header_spec = self.spec.to_dict()
        header_spec["n_trials"] = len(ordered)
        lines = [_canonical_json({"spec": header_spec})]
        lines += [
            _canonical_json({"trial": i, "record": record})
            for i, record in enumerate(ordered)
        ]
        content = ("\n".join(lines) + "\n").encode()
        if (
            self.path.exists()
            and self.path.stat().st_size == len(content)
            and self.path.read_bytes() == content
        ):
            return
        # Atomic replace: a kill during the rewrite must not destroy trial
        # lines that were already safely checkpointed.
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(content)
        os.replace(tmp, self.path)


def parse_results_text(text: str) -> tuple[dict | None, dict[int, TrialRecord]]:
    """Parse checkpoint JSONL text into ``(spec dict or None, records by index)``.

    Unlike :meth:`TrialCheckpoint.load` this does not need the spec up front
    (the header, if present, is returned) and does not bound trial indices.
    """
    spec_dict: dict | None = None
    records: dict[int, TrialRecord] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn final line from an interrupted run
        if "spec" in entry:
            spec_dict = entry["spec"]
            continue
        index = entry.get("trial")
        if isinstance(index, int) and index >= 0 and "record" in entry:
            # A trial line without its record (torn mid-line, or hand-edited)
            # is skipped like an unparseable line: resume recomputes the
            # trial instead of crashing on the incomplete entry.
            records[index] = entry["record"]
    return spec_dict, records
