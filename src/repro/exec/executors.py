"""Pluggable execution backends: serial, shared process pool, async futures.

An :class:`Executor` turns pending trial work -- ``(grid point, campaign
spec, trial indices)`` slices -- into finished ``(point, trial, record)``
triples.  The engine owns specs, checkpoints and aggregation; executors own
*only* the scheduling, so every backend is bit-identical by construction:
per-trial seeds derive from the spec root (``SeedSequence.spawn``) and
results are keyed by index, making completion order irrelevant.

Built-in backends (select by name, e.g. ``--executor process``):

* ``serial`` -- in-process, trials in order.  Also the only backend that can
  run trial kernels registered locally in a non-importable scope (tests,
  notebooks), and it checkpoints after every single trial.
* ``process`` -- one ``multiprocessing`` pool *shared across every grid
  point* of the experiment, so a sweep parallelises at the sweep level
  instead of campaign-by-campaign.
* ``async`` -- ``concurrent.futures`` shard dispatch: every batch becomes an
  independently-submitted future whose records merge through the JSONL
  checkpoint layer as they land.  The shape distributed/remote shards slot
  into.
* ``distributed`` -- lease-based batch dispatch to local and/or remote worker
  processes over a ``multiprocessing.managers`` socket transport (see
  :mod:`repro.exec.distributed`); workers join and leave mid-run, and a
  killed worker's batches are re-leased automatically.

New backends plug in with::

    @register_executor("my_backend")
    class MyExecutor(Executor):
        def execute(self, slices):
            ...
"""

from __future__ import annotations

import abc
import concurrent.futures
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.fault.runner import (
    _chunk,
    _iter_trial_records,
    _mp_context,
    _run_trial_batch,
)

#: A per-trial record: a JSON-serialisable mapping produced by a trial kernel.
TrialRecord = dict

#: One finished trial: (grid-point index, trial index, record).
TrialResult = tuple[int, int, TrialRecord]


@dataclass(frozen=True)
class TrialSlice:
    """Pending work of one grid point: its spec and the trial indices to run."""

    point_index: int
    spec_dict: dict
    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", tuple(int(i) for i in self.indices))


class Executor(abc.ABC):
    """Strategy interface every execution backend implements.

    Parameters
    ----------
    n_workers:
        Parallelism budget.  The serial backend ignores it; pool backends
        spawn at most this many workers (fewer if there is less work).
    """

    #: Registry name; set by :func:`register_executor`.
    name: str = ""

    def __init__(self, n_workers: int = 1) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    @abc.abstractmethod
    def execute(self, slices: Sequence[TrialSlice]) -> Iterator[TrialResult]:
        """Yield ``(point index, trial index, record)`` as trials finish.

        Completion order is backend-defined and carries no meaning; the
        engine keys every record by its indices.
        """

    def pool_snapshot(self) -> dict | None:
        """Current worker-pool lifecycle counts, or ``None`` if untracked.

        Backends that own an observable pool of worker processes (the
        ``distributed`` coordinator) return a dict of counts -- ``size``
        (live workers now) plus cumulative ``spawned`` / ``retired`` /
        ``died`` / ``respawned`` -- which the engine attaches to every
        :class:`~repro.exec.progress.ProgressEvent` so a run's pool history
        is visible to progress listeners.  The default is ``None``: serial
        and pool backends have no per-worker lifecycle to report.
        """
        return None

    def _batches(self, slices: Sequence[TrialSlice]) -> list[TrialSlice]:
        """Split each slice into small batches, preserving point order.

        Small batches bound how much work a kill can lose (each finished
        batch checkpoints before more work is handed out) and let one shared
        pool interleave grid points.
        """
        if self.n_workers < 1:
            # The constructor rejects this too, but a mutated instance must
            # fail loudly here rather than silently batching work for zero
            # workers (which would hang pool dispatch with unissued trials).
            raise ValueError(
                f"{type(self).__name__}.n_workers must be >= 1 to batch "
                f"work, got {self.n_workers}"
            )
        batches = []
        for piece in slices:
            n_chunks = max(self.n_workers * 4, -(-len(piece.indices) // 32))
            for indices in _chunk(list(piece.indices), n_chunks):
                batches.append(
                    TrialSlice(piece.point_index, piece.spec_dict, tuple(indices))
                )
        return batches


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_EXECUTORS: dict[str, type[Executor]] = {}


def register_executor(name: str) -> Callable[[type[Executor]], type[Executor]]:
    """Class decorator registering an :class:`Executor` under ``name``."""

    def decorator(cls: type[Executor]) -> type[Executor]:
        if name in _EXECUTORS:
            raise ValueError(f"executor {name!r} is already registered")
        if not (isinstance(cls, type) and issubclass(cls, Executor)):
            raise TypeError(f"{cls!r} must subclass Executor")
        cls.name = name
        _EXECUTORS[name] = cls
        return cls

    return decorator


def get_executor(name: str) -> type[Executor]:
    """Look up a registered executor class by name."""
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered: {available_executors()}"
        ) from None


def available_executors() -> list[str]:
    """Sorted names of all registered execution backends."""
    return sorted(_EXECUTORS)


def build_executor(executor: str | Executor, n_workers: int = 1) -> Executor:
    """Coerce a name or ready instance into an executor."""
    if isinstance(executor, Executor):
        return executor
    return get_executor(executor)(n_workers=n_workers)


# --------------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------------- #
@register_executor("serial")
class SerialExecutor(Executor):
    """In-process execution, trials in deterministic order.

    The lazily-yielded records let the engine checkpoint after every single
    trial, so a killed serial run loses at most one trial -- and kernels
    registered only in this interpreter (tests, notebooks) stay usable.
    """

    def execute(self, slices: Sequence[TrialSlice]) -> Iterator[TrialResult]:
        for piece in slices:
            for index, record in _iter_trial_records(piece.spec_dict, piece.indices):
                yield piece.point_index, index, record


def _run_point_batch(batch: TrialSlice) -> tuple[int, list[tuple[int, TrialRecord]]]:
    """Pool worker: run one batch and tag the results with its grid point."""
    return batch.point_index, _run_trial_batch(batch.spec_dict, list(batch.indices))


@register_executor("process")
class ProcessExecutor(Executor):
    """One shared ``multiprocessing`` pool across *all* grid points.

    The seed runner pooled workers per campaign, so a 6-point sweep with 8
    workers ran 6 sequential pools.  Here every batch of every grid point
    feeds one pool: grid points execute concurrently and the sweep
    parallelises at the sweep level.
    """

    def execute(self, slices: Sequence[TrialSlice]) -> Iterator[TrialResult]:
        batches = self._batches(slices)
        if not batches:
            return
        ctx = _mp_context()
        with ctx.Pool(processes=min(self.n_workers, len(batches))) as pool:
            for point_index, results in pool.imap_unordered(
                _run_point_batch, batches, chunksize=1
            ):
                for index, record in results:
                    yield point_index, index, record


@register_executor("async")
class AsyncExecutor(Executor):
    """``concurrent.futures`` shard dispatch.

    Every batch is submitted as an independent future against a
    ``ProcessPoolExecutor`` and harvested with ``as_completed`` -- the same
    shard-and-merge shape a distributed dispatcher would use, with the JSONL
    checkpoint layer merging records as shards land.
    """

    def execute(self, slices: Sequence[TrialSlice]) -> Iterator[TrialResult]:
        batches = self._batches(slices)
        if not batches:
            return
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(batches)),
            mp_context=_mp_context(),
        )
        # Not a `with` block: the context manager exits via shutdown(wait=True)
        # with nothing cancelled, so an *aborted* run (the engine closing this
        # generator after a raising listener or a Ctrl-C) would block until
        # every already-submitted batch finished.  Aborts and errors must
        # instead drop the queued batches and return promptly.
        try:
            futures = [pool.submit(_run_point_batch, batch) for batch in batches]
            for future in concurrent.futures.as_completed(futures):
                point_index, results = future.result()
                for index, record in results:
                    yield point_index, index, record
        except BaseException:  # includes GeneratorExit from an engine abort
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
