"""Deterministic roofline-cost kernels: the paper's tables/figures as specs.

The cross-scheme timing artifacts (Figure 9, Figure 15, Tables 1-2) are
"evaluate a cost model over a grid and tabulate" -- exactly the shape of a
sweep.  These registered kernels put them on the same
:class:`~repro.exec.spec.ExperimentSpec` / executor / report pipeline as the
Monte-Carlo campaigns, so one CLI regenerates every artifact::

    {"campaign": "attention_cost", "n_trials": 1,
     "base_params": {"heads": 16, "head_dim": 64},
     "grid": {"scheme": ["efta", "efta_unified", "decoupled"],
              "seq_len": [512, 1024, 2048, 4096, 8192, 16384]}}

Each kernel is a *single-trial, zero-randomness* campaign: the record is a
pure function of the grid point, the aggregate is the record itself (a typed
:class:`~repro.exec.results.RecordSummary`), and the sweep report renders the
record fields as columns.
"""

from __future__ import annotations

import numpy as np

from repro.exec.results import single_record_aggregate
from repro.fault.runner import register_campaign

#: Fixed total token count of the paper's attention sweeps (Section 4.1).
TOTAL_TOKENS = 16 * 1024


@register_campaign("attention_cost", aggregate=single_record_aggregate)
def _attention_cost_trial(rng: np.random.Generator, params: dict) -> dict:
    """Simulated A100 cost of one protection scheme at one attention shape."""
    from repro.core.config import AttentionConfig
    from repro.core.schemes import build_scheme
    from repro.hardware.costmodel import AttentionWorkload

    scheme_name = str(params.get("scheme", "efta_unified"))
    seq_len = int(params.get("seq_len", 512))
    heads = int(params.get("heads", 16))
    head_dim = int(params.get("head_dim", 64))
    total_tokens = int(params.get("total_tokens", TOTAL_TOKENS))
    batch = int(
        params.get(
            "batch",
            AttentionWorkload.with_total_tokens(seq_len, total_tokens=total_tokens).batch,
        )
    )

    config = AttentionConfig(seq_len=seq_len, head_dim=head_dim)
    scheme = build_scheme(scheme_name, config)
    cost = scheme.cost_breakdown(batch, heads)
    return {
        "scheme": scheme_name,
        "seq_len": seq_len,
        "batch": batch,
        "base_time": float(cost.base_time),
        "total_time": float(cost.total_time),
        "overhead": float(cost.overhead),
        "fits_in_memory": bool(scheme.fits_in_memory(batch, heads)),
    }


@register_campaign("transformer_cost", aggregate=single_record_aggregate)
def _transformer_cost_trial(rng: np.random.Generator, params: dict) -> dict:
    """Simulated A100 inference-step cost of one full-size Transformer model."""
    from repro.transformer.configs import get_config
    from repro.transformer.costing import TransformerCostModel

    name = str(params.get("model", "GPT2"))
    seq_len = int(params.get("seq_len", 512))
    faults = int(params.get("faults_per_attention", 1))
    report = TransformerCostModel(get_config(name), seq_len=seq_len).report(
        faults_per_attention=faults
    )
    return {
        "model": report.name,
        "seq_len": seq_len,
        "base_time": float(report.base_time),
        "detection_time": float(report.detection_time),
        "correction_time": float(report.correction_time),
        "detection_overhead": float(report.detection_overhead),
        "correction_overhead": float(report.correction_overhead),
    }
