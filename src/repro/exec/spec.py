"""The unified experiment specification: one entry point for campaigns and sweeps.

An :class:`ExperimentSpec` declares everything the paper's Monte-Carlo
artifacts need -- which registered trial kernel to run, how many trials, the
root seed, the shared parameters and (optionally) a parameter grid.  With an
empty ``grid`` the experiment is a single campaign; with a non-empty ``grid``
it is a cross-campaign sweep whose expansion is the Cartesian product of the
axes.  ``from_dict``/``from_json`` auto-detect which of the two on-disk
shapes they are given, so one loader handles every spec file in the repo::

    {"campaign": "abft_error_coverage", "n_trials": 50, "seed": 7,
     "params": {"bit_error_rate": 1e-7, "scheme": "tensor"}}

    {"campaign": "transformer_inference", "n_trials": 100, "seed": 7,
     "base_params": {"site": "gemm_qk"},
     "grid": {"scheme": ["none", "efta_unified"], "bit_error_rate": [1e-9, 1e-8]}}

The legacy :class:`~repro.fault.runner.CampaignSpec` and
:class:`~repro.fault.sweep.SweepSpec` survive as thin wrappers: both convert
losslessly to and from an :class:`ExperimentSpec` (``from_campaign`` /
``from_sweep`` / ``as_campaign`` / ``as_sweep``), and the sweep's grid
expansion lives here.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.exec.adaptive import AdaptiveSpec
from repro.fault.runner import CampaignSpec, _canonical_json


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment (campaign or sweep).

    Attributes
    ----------
    campaign:
        Name of the registered trial kernel every grid point runs.
    n_trials:
        Trials per grid point.
    seed:
        Root seed shared by every grid point.  Per-trial generators derive
        from ``SeedSequence(seed).spawn``, so results are bit-identical for
        any executor backend, worker count or scheduling -- and sharing the
        root across grid points gives common random numbers, sharpening
        cross-cell comparisons.
    params:
        Parameters shared by every grid point; a grid axis overrides a base
        key of the same name.
    grid:
        Mapping of parameter name to the list of values to sweep.  Empty
        means a single campaign.  Expansion is the Cartesian product, axes
        iterated in sorted key order and values in the order given.
    name:
        Optional label; expanded campaigns are named
        ``<label>/<axis>=<value>,...`` (sweeps) or ``name`` verbatim
        (single campaigns).
    faultload:
        Optional path to a pre-materialized faultload artifact (see
        :mod:`repro.fault.dictionary`).  When set, every grid point's
        campaign replays the artifact's per-trial ``FaultSpec`` lists instead
        of drawing faults -- the same faults under every scheme, backend and
        worker count.  Serialised only when non-empty, so existing spec files
        and checkpoint resume identities are untouched.
    adaptive:
        Optional :class:`~repro.exec.adaptive.AdaptiveSpec` stopping policy.
        When set, the engine runs each grid point in rounds and stops it as
        soon as its metric's confidence interval is tight enough (or its
        bound settles a threshold), topping the rest up by another batch --
        ``n_trials`` becomes the *initial* per-point budget rather than a
        fixed count.  Serialised only when set (like ``faultload``), so
        existing spec files round-trip unchanged.
    store:
        Optional results-store backend name (``"jsonl"``, ``"sqlite"``, or
        any ``@register_store`` plug-in; see :mod:`repro.store`).  Empty
        means the default JSONL layout; ``repro run --store`` overrides it.
        Serialised only when non-empty and excluded from resume identities,
        so existing spec files and checkpoints are untouched.
    """

    campaign: str
    n_trials: int
    seed: int = 0
    params: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    name: str = ""
    faultload: str = ""
    adaptive: AdaptiveSpec | None = None
    store: str = ""

    def __post_init__(self) -> None:
        if not self.campaign:
            raise ValueError("campaign name must be non-empty")
        if self.n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative (SeedSequence entropy)")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(f"grid axis {axis!r} must be a non-empty list of values")
        if isinstance(self.adaptive, dict):
            # Accept the on-disk block form directly (kwargs mirror from_dict).
            object.__setattr__(self, "adaptive", AdaptiveSpec.from_dict(self.adaptive))
        if self.adaptive is not None and not isinstance(self.adaptive, AdaptiveSpec):
            raise ValueError(
                "adaptive must be an AdaptiveSpec (or its dict form), got "
                f"{type(self.adaptive).__name__}"
            )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def is_sweep(self) -> bool:
        """Whether the experiment expands into more than one campaign shape."""
        return bool(self.grid)

    @property
    def kind(self) -> str:
        """``"sweep"`` (non-empty grid) or ``"campaign"``."""
        return "sweep" if self.is_sweep else "campaign"

    @property
    def label(self) -> str:
        """The display name (explicit ``name`` or the campaign name)."""
        return self.name or self.campaign

    @property
    def axes(self) -> list[str]:
        """Grid axis names in expansion (sorted) order."""
        return sorted(self.grid)

    @property
    def n_points(self) -> int:
        """Number of grid points the experiment expands into."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def points(self) -> list[dict]:
        """The grid points, in deterministic expansion order."""
        axes = self.axes
        if not axes:
            return [{}]
        return [
            dict(zip(axes, combo))
            for combo in itertools.product(*(list(self.grid[a]) for a in axes))
        ]

    def expanded(self) -> list[tuple[dict, CampaignSpec]]:
        """``(grid point, campaign spec)`` pairs, in expansion order.

        A single campaign (empty grid) expands to one pair whose spec
        round-trips exactly to the :class:`CampaignSpec` form of this
        experiment (same ``name``), so checkpoint resume identities are
        shared between the old and new entry points.
        """
        if not self.is_sweep:
            return [({}, self.as_campaign())]
        extra = {"faultload": self.faultload} if self.faultload else {}
        pairs = []
        for point in self.points():
            tag = ",".join(f"{axis}={point[axis]}" for axis in self.axes)
            spec = CampaignSpec(
                campaign=self.campaign,
                n_trials=self.n_trials,
                seed=self.seed,
                params={**extra, **self.params, **point},
                name=f"{self.label}/{tag}",
            )
            pairs.append((point, spec))
        return pairs

    def expand(self) -> list[CampaignSpec]:
        """One :class:`CampaignSpec` per grid point, in expansion order."""
        return [spec for _, spec in self.expanded()]

    # ------------------------------------------------------------------ #
    # Serialisation (auto-detecting both on-disk shapes)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-dict form, in the campaign or sweep on-disk shape.

        A single campaign serialises to the :class:`CampaignSpec` shape
        (``params``), a sweep to the :class:`SweepSpec` shape (``base_params``
        + ``grid``), so files written from either API load with either.
        """
        if not self.is_sweep:
            data = {
                "campaign": self.campaign,
                "n_trials": self.n_trials,
                "seed": self.seed,
                "params": json.loads(json.dumps(self.params)),
                "name": self.name,
            }
        else:
            data = {
                "campaign": self.campaign,
                "n_trials": self.n_trials,
                "seed": self.seed,
                "grid": json.loads(json.dumps(self.grid)),
                "base_params": json.loads(json.dumps(self.params)),
                "name": self.name,
            }
        if self.faultload:
            # Emitted only when set: pre-existing spec files and resume keys
            # must serialise exactly as before this field existed.
            data["faultload"] = self.faultload
        if self.adaptive is not None:
            data["adaptive"] = self.adaptive.to_dict()
        if self.store:
            data["store"] = self.store
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Auto-detecting inverse of :meth:`to_dict`.

        A ``grid`` key marks a sweep-shaped dict; shared parameters may be
        spelled ``params`` (campaign shape) or ``base_params`` (sweep shape),
        but not both.
        """
        if not isinstance(data, dict):
            raise ValueError(f"experiment spec must be a JSON object, got {type(data).__name__}")
        known = {
            "campaign", "n_trials", "seed", "params", "base_params",
            "grid", "name", "faultload", "adaptive", "store",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        if "params" in data and "base_params" in data:
            raise ValueError("give either 'params' or 'base_params', not both")
        params = data.get("params", data.get("base_params", {}))
        return cls(
            campaign=str(data["campaign"]),
            n_trials=int(data["n_trials"]),
            seed=int(data.get("seed", 0)),
            # Deep-copied for symmetry with to_dict: the frozen spec must not
            # alias the caller's nested mutables.
            params=json.loads(json.dumps(params)),
            grid=json.loads(json.dumps(data.get("grid", {}))),
            name=str(data.get("name", "")),
            faultload=str(data.get("faultload", "")),
            adaptive=(
                AdaptiveSpec.from_dict(data["adaptive"])
                if data.get("adaptive") is not None
                else None
            ),
            store=str(data.get("store", "")),
        )

    def to_json(self) -> str:
        """Canonical (sorted-key) JSON form."""
        return _canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Inverse of :meth:`to_json` (auto-detecting, like :meth:`from_dict`)."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # Legacy-spec bridges
    # ------------------------------------------------------------------ #
    @classmethod
    def from_campaign(cls, spec: CampaignSpec) -> "ExperimentSpec":
        """Lift a legacy :class:`CampaignSpec` into an experiment."""
        return cls(
            campaign=spec.campaign,
            n_trials=spec.n_trials,
            seed=spec.seed,
            params=json.loads(json.dumps(spec.params)),
            name=spec.name,
        )

    @classmethod
    def from_sweep(cls, sweep: Any) -> "ExperimentSpec":
        """Lift a legacy :class:`~repro.fault.sweep.SweepSpec` into an experiment."""
        return cls(
            campaign=sweep.campaign,
            n_trials=sweep.n_trials,
            seed=sweep.seed,
            params=json.loads(json.dumps(sweep.base_params)),
            grid=json.loads(json.dumps(sweep.grid)),
            name=sweep.name,
        )

    @classmethod
    def from_any(cls, spec: Any) -> "ExperimentSpec":
        """Coerce any spec form (experiment, campaign, sweep, dict, JSON text)."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, CampaignSpec):
            return cls.from_campaign(spec)
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if isinstance(spec, str):
            return cls.from_json(spec)
        if hasattr(spec, "grid") and hasattr(spec, "base_params"):
            return cls.from_sweep(spec)
        raise TypeError(f"cannot build an ExperimentSpec from {type(spec).__name__}")

    def as_campaign(self) -> CampaignSpec:
        """This experiment as a legacy :class:`CampaignSpec` (no grid allowed)."""
        if self.is_sweep:
            raise ValueError(
                f"experiment {self.label!r} has a {len(self.grid)}-axis grid; "
                "expand() it into campaigns instead"
            )
        params = json.loads(json.dumps(self.params))
        if self.faultload:
            params.setdefault("faultload", self.faultload)
        return CampaignSpec(
            campaign=self.campaign,
            n_trials=self.n_trials,
            seed=self.seed,
            params=params,
            name=self.name,
        )

    def as_sweep(self):
        """This experiment as a legacy :class:`~repro.fault.sweep.SweepSpec`."""
        from repro.fault.sweep import SweepSpec

        return SweepSpec(
            campaign=self.campaign,
            n_trials=self.n_trials,
            seed=self.seed,
            base_params=json.loads(json.dumps(self.params)),
            grid=json.loads(json.dumps(self.grid)),
            name=self.name,
        )


def load_spec(text: str) -> ExperimentSpec:
    """Parse a JSON spec file's text into an :class:`ExperimentSpec`."""
    return ExperimentSpec.from_json(text)
