"""Flash-attention style tiled attention (Equations 1-7), unprotected.

This is the single-kernel, O(n) memory formulation that EFTA extends with
fault tolerance.  The outer loop walks blocks of query rows; the inner loop
streams key/value blocks, folding each into the online softmax state.
"""

from __future__ import annotations

import numpy as np

from repro.attention.softmax import OnlineSoftmaxState
from repro.attention.tiling import partition_blocks
from repro.fp.float16 import fp16_matmul


def _flash_single(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float,
    block_size: int,
    mixed_precision: bool,
) -> np.ndarray:
    seq_len, head_dim = q.shape
    out = np.empty((seq_len, head_dim), dtype=np.float32)
    for row_blk in partition_blocks(seq_len, block_size):
        q_i = q[row_blk]
        state = OnlineSoftmaxState.initial(q_i.shape[0], head_dim)
        for col_blk in partition_blocks(k.shape[0], block_size):
            k_j = k[col_blk]
            v_j = v[col_blk]
            if mixed_precision:
                scores = fp16_matmul(q_i, k_j.T) * np.float32(scale)
            else:
                scores = (q_i @ k_j.T).astype(np.float32) * np.float32(scale)
            state.update(scores, v_j)
        out[row_blk] = state.finalize()
    return out


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
    block_size: int = 128,
    mixed_precision: bool = False,
) -> np.ndarray:
    """Tiled exact attention with O(seq_len) extra memory.

    Accepts the same ``(..., seq_len, head_dim)`` layout as
    :func:`repro.attention.standard.standard_attention`; leading dimensions
    are processed independently (one simulated CTA per (batch, head, row
    block), matching Figure 4).
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if q.shape[:-2] != k.shape[:-2] or q.shape[:-2] != v.shape[:-2]:
        raise ValueError("q, k, v must share leading (batch/head) dimensions")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])

    lead = q.shape[:-2]
    q2 = q.reshape((-1,) + q.shape[-2:])
    k2 = k.reshape((-1,) + k.shape[-2:])
    v2 = v.reshape((-1,) + v.shape[-2:])
    out = np.empty_like(q2)
    for g in range(q2.shape[0]):
        out[g] = _flash_single(q2[g], k2[g], v2[g], scale, block_size, mixed_precision)
    return out.reshape(lead + q.shape[-2:])
