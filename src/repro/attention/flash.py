"""Flash-attention style tiled attention (Equations 1-7), unprotected.

This is the single-kernel, O(n) memory formulation that EFTA extends with
fault tolerance.  The outer loop walks blocks of query rows; the inner loop
streams key/value blocks, folding each into the online softmax state.

Two implementations share the entry point: :func:`_flash_single` runs one
``(seq_len, head_dim)`` slice through :class:`OnlineSoftmaxState` (the scalar
oracle), and :func:`_flash_stacked` advances *all* leading (batch, head)
groups through the same tile recurrence with one stacked tensor op per step.
The stacked path performs the identical float32 operations in the identical
order, so its output is bitwise equal to running the oracle per group --
pinned by ``tests/attention/test_standard_and_flash.py``.
"""

from __future__ import annotations

import numpy as np

from repro.attention.softmax import OnlineSoftmaxState
from repro.attention.tiling import partition_blocks
from repro.fp.float16 import fp16_matmul


def _flash_single(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float,
    block_size: int,
    mixed_precision: bool,
) -> np.ndarray:
    seq_len, head_dim = q.shape
    out = np.empty((seq_len, head_dim), dtype=np.float32)
    for row_blk in partition_blocks(seq_len, block_size):
        q_i = q[row_blk]
        state = OnlineSoftmaxState.initial(q_i.shape[0], head_dim)
        for col_blk in partition_blocks(k.shape[0], block_size):
            k_j = k[col_blk]
            v_j = v[col_blk]
            if mixed_precision:
                scores = fp16_matmul(q_i, k_j.T) * np.float32(scale)
            else:
                scores = (q_i @ k_j.T).astype(np.float32) * np.float32(scale)
            state.update(scores, v_j)
        out[row_blk] = state.finalize()
    return out


def _flash_stacked(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float,
    block_size: int,
    mixed_precision: bool,
) -> np.ndarray:
    """All groups of ``(groups, seq_len, head_dim)`` through the tile loop at once.

    Mirrors :meth:`OnlineSoftmaxState.update` / ``finalize`` step for step with
    a leading group axis; every op is either elementwise, a last-axis
    reduction, or a stacked GEMM, all of which NumPy evaluates identically to
    the per-slice forms.
    """
    groups, seq_len, head_dim = q.shape
    kv_len = k.shape[1]
    out = np.empty((groups, seq_len, head_dim), dtype=np.float32)
    for row_blk in partition_blocks(seq_len, block_size):
        q_i = q[:, row_blk]
        rows = q_i.shape[1]
        row_max = np.full((groups, rows), -np.inf, dtype=np.float32)
        row_sum = np.zeros((groups, rows), dtype=np.float32)
        acc = np.zeros((groups, rows, head_dim), dtype=np.float32)
        for col_blk in partition_blocks(kv_len, block_size):
            k_j = k[:, col_blk]
            v_j = v[:, col_blk]
            if mixed_precision:
                scores = fp16_matmul(q_i, k_j.transpose(0, 2, 1)) * np.float32(scale)
            else:
                # Operands are float32 at entry, so the product already is too.
                scores = np.matmul(q_i, k_j.transpose(0, 2, 1)) * np.float32(scale)
            local_max = scores.max(axis=2)
            new_max = np.maximum(row_max, local_max)
            # Everything below stays float32 without casts: the inputs are
            # float32 and the python-float literals do not promote (NEP 50),
            # so spelling out .astype(np.float32) would only copy.
            probs = np.exp(scores - new_max[:, :, None])
            rescale = np.exp(row_max - new_max)
            rescale = np.where(np.isfinite(rescale), rescale, 0.0)
            row_sum = rescale * row_sum + probs.sum(axis=2, dtype=np.float32)
            acc = rescale[:, :, None] * acc + np.matmul(probs, v_j)
            row_max = new_max
        denom = np.where(row_sum > 0.0, row_sum, 1.0)
        out[:, row_blk] = acc / denom[:, :, None]
    return out


def flash_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
    block_size: int = 128,
    mixed_precision: bool = False,
) -> np.ndarray:
    """Tiled exact attention with O(seq_len) extra memory.

    Accepts the same ``(..., seq_len, head_dim)`` layout as
    :func:`repro.attention.standard.standard_attention`; leading dimensions
    are processed independently (one simulated CTA per (batch, head, row
    block), matching Figure 4), advanced together by stacked tensor ops.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if q.shape[:-2] != k.shape[:-2] or q.shape[:-2] != v.shape[:-2]:
        raise ValueError("q, k, v must share leading (batch/head) dimensions")
    if k.shape[-2] != v.shape[-2]:
        raise ValueError(
            f"k and v must share the sequence dimension: k has {k.shape[-2]} "
            f"rows but v has {v.shape[-2]}"
        )
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])

    lead = q.shape[:-2]
    q2 = q.reshape((-1,) + q.shape[-2:])
    k2 = k.reshape((-1,) + k.shape[-2:])
    v2 = v.reshape((-1,) + v.shape[-2:])
    out = _flash_stacked(q2, k2, v2, scale, block_size, mixed_precision)
    return out.reshape(lead + q.shape[-2:])
