"""Attention substrate: softmax primitives, standard and flash-style attention.

These are the *unprotected* reference algorithms of Section 2.1: the standard
O(n^2) attention used as a correctness oracle and the flash-attention style
tiled/online formulation (Equations 1-7) whose block structure the end-to-end
fault-tolerant attention (EFTA) reuses.
"""

from repro.attention.softmax import (
    OnlineSoftmaxState,
    block_softmax,
    log_sum_exp,
    stable_softmax,
)
from repro.attention.tiling import num_blocks, partition_blocks, split_heads, merge_heads
from repro.attention.standard import standard_attention
from repro.attention.flash import flash_attention

__all__ = [
    "OnlineSoftmaxState",
    "block_softmax",
    "log_sum_exp",
    "stable_softmax",
    "num_blocks",
    "partition_blocks",
    "split_heads",
    "merge_heads",
    "standard_attention",
    "flash_attention",
]
