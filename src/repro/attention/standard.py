"""Standard O(n^2) scaled dot-product attention (the correctness oracle)."""

from __future__ import annotations

import numpy as np

from repro.attention.softmax import stable_softmax
from repro.fp.float16 import fp16_matmul


def standard_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float | None = None,
    mixed_precision: bool = False,
) -> np.ndarray:
    """Compute ``softmax(Q K^T * scale) V`` directly.

    Parameters
    ----------
    q, k, v:
        Arrays of shape ``(..., seq_len, head_dim)`` (any number of leading
        batch/head dimensions).
    scale:
        Score scale; defaults to ``1 / sqrt(head_dim)``.
    mixed_precision:
        Run the two GEMMs with FP16 operands / FP32 accumulation like the
        Tensor-Core kernels (used when comparing against EFTA bit-for-bit in
        regime).

    Returns
    -------
    np.ndarray
        Attention output of shape ``(..., seq_len, head_dim)``, float32.
    """
    q = np.asarray(q, dtype=np.float32)
    k = np.asarray(k, dtype=np.float32)
    v = np.asarray(v, dtype=np.float32)
    if q.shape[-1] != k.shape[-1]:
        raise ValueError("q and k must share the head dimension")
    if k.shape[-2] != v.shape[-2]:
        raise ValueError("k and v must share the sequence dimension")
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    kt = np.swapaxes(k, -1, -2)
    if mixed_precision:
        scores = fp16_matmul(q, kt) * np.float32(scale)
        probs = stable_softmax(scores, axis=-1)
        return fp16_matmul(probs, v)
    scores = np.matmul(q, kt) * np.float32(scale)
    probs = stable_softmax(scores, axis=-1)
    return np.matmul(probs, v).astype(np.float32)
