"""Numerically stable softmax primitives and the online (streaming) softmax state.

The fused attention kernel never materialises the full score matrix: it keeps,
per output row, a running maximum ``m``, a running normaliser ``l`` and an
un-normalised output accumulator ``O`` that are rescaled whenever a new block
raises the maximum (Equations 1-7).  :class:`OnlineSoftmaxState` implements
exactly that recurrence and is shared by the unprotected flash attention and
by EFTA (which additionally threads checksums through the same updates).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def stable_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (subtracts the row max)."""
    x = np.asarray(x, dtype=np.float32)
    m = np.max(x, axis=axis, keepdims=True)
    e = np.exp(x - m)
    return e / np.sum(e, axis=axis, keepdims=True)


def block_softmax(scores: np.ndarray, row_max: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Local (block) softmax numerator and row-sum given an externally supplied max.

    Returns ``(P, rowsum)`` where ``P = exp(scores - row_max[:, None])`` and
    ``rowsum = P.sum(axis=1)``; the caller owns the global normalisation.
    """
    scores = np.asarray(scores, dtype=np.float32)
    p = np.exp(scores - row_max[:, None])
    return p, p.sum(axis=1, dtype=np.float32)


def log_sum_exp(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-sum-exp reduction (used by property tests as an oracle)."""
    x = np.asarray(x, dtype=np.float64)
    m = np.max(x, axis=axis, keepdims=True)
    return (m + np.log(np.sum(np.exp(x - m), axis=axis, keepdims=True))).squeeze(axis)


@dataclass
class OnlineSoftmaxState:
    """Running state of the streaming softmax for one block of output rows.

    Attributes
    ----------
    row_max:
        Current running maximum ``m_i`` per row (shape ``(rows,)``).
    row_sum:
        Current running normaliser ``l_i`` per row (shape ``(rows,)``),
        expressed relative to ``row_max``.
    output:
        Un-normalised output accumulator ``O_i`` (shape ``(rows, head_dim)``),
        also expressed relative to ``row_max``.
    block_maxes:
        History of per-iteration local row maxima, needed by SNVR's rowsum
        range restriction (lower bound ``sum_k exp(m_ik - m_ij)``).
    """

    row_max: np.ndarray
    row_sum: np.ndarray
    output: np.ndarray
    block_maxes: list[np.ndarray]

    @classmethod
    def initial(cls, rows: int, head_dim: int) -> "OnlineSoftmaxState":
        """Fresh state: max = -inf, sum = 0, output = 0."""
        return cls(
            row_max=np.full(rows, -np.inf, dtype=np.float32),
            row_sum=np.zeros(rows, dtype=np.float32),
            output=np.zeros((rows, head_dim), dtype=np.float32),
            block_maxes=[],
        )

    def update(self, scores: np.ndarray, value_block: np.ndarray) -> dict[str, np.ndarray]:
        """Fold one score block and its value block into the running state.

        Implements lines 10-20 of Algorithm 1 without any protection: reduce
        max, exponentiate, rescale the previous accumulator, and accumulate
        ``P_ij V_j``.

        Returns a dict of the intermediate quantities (``probs``, ``scale``,
        ``new_max``, ``local_max``) so that protected variants can thread
        checksums through identical numerics.
        """
        scores = np.asarray(scores, dtype=np.float32)
        local_max = scores.max(axis=1)
        new_max = np.maximum(self.row_max, local_max)
        probs = np.exp(scores - new_max[:, None]).astype(np.float32)
        scale = np.exp(self.row_max - new_max).astype(np.float32)
        scale = np.where(np.isfinite(scale), scale, 0.0).astype(np.float32)
        self.row_sum = scale * self.row_sum + probs.sum(axis=1, dtype=np.float32)
        self.output = scale[:, None] * self.output + probs @ np.asarray(value_block, dtype=np.float32)
        self.row_max = new_max
        self.block_maxes.append(local_max)
        return {"probs": probs, "scale": scale, "new_max": new_max, "local_max": local_max}

    def finalize(self) -> np.ndarray:
        """Normalise the accumulator by the global row sums and return O."""
        denom = np.where(self.row_sum > 0.0, self.row_sum, 1.0)
        return (self.output / denom[:, None]).astype(np.float32)

    def rowsum_lower_bound(self) -> np.ndarray:
        """SNVR lower bound on the final rowsum: ``sum_k exp(m_ik - m_i)``.

        Every block contributes at least ``exp(m_ik - m_i)`` to the final
        normaliser because its row maximum appears in the sum with that scale.
        """
        if not self.block_maxes:
            return np.zeros_like(self.row_sum)
        stacked = np.stack(self.block_maxes, axis=0)
        return np.exp(stacked - self.row_max[None, :]).sum(axis=0).astype(np.float32)
