"""Block tiling and head reshaping helpers shared by the attention kernels."""

from __future__ import annotations

from typing import Iterator

import numpy as np


def num_blocks(seq_len: int, block_size: int) -> int:
    """Number of blocks needed to cover ``seq_len`` with ``block_size`` (ceil)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return -(-seq_len // block_size)


def partition_blocks(seq_len: int, block_size: int) -> Iterator[slice]:
    """Yield slices partitioning ``range(seq_len)`` into blocks of ``block_size``."""
    for start in range(0, seq_len, block_size):
        yield slice(start, min(start + block_size, seq_len))


def split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """Reshape ``(batch, seq, hidden)`` into ``(batch, heads, seq, head_dim)``."""
    x = np.asarray(x)
    batch, seq, hidden = x.shape
    if hidden % heads:
        raise ValueError(f"hidden dim {hidden} not divisible by heads {heads}")
    head_dim = hidden // heads
    return x.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)


def merge_heads(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_heads`: ``(batch, heads, seq, head_dim)`` -> ``(batch, seq, hidden)``."""
    x = np.asarray(x)
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)
