"""FT-Transformer reproduction: end-to-end fault tolerant attention (EFTA).

Top-level convenience re-exports.  The primary entry points are:

* :class:`repro.core.EFTAttention` / :class:`repro.core.EFTAttentionOptimized`
  -- the paper's contribution: single-kernel attention with hybrid strided
  ABFT + SNVR protection.
* :class:`repro.core.DecoupledFTAttention` -- the operation-level baseline.
* :class:`repro.fault.FaultInjector` -- single-event-upset injection into any
  pipeline stage.
* :class:`repro.transformer.TransformerModel` -- the Transformer inference
  substrate (GPT2 / BERT / T5 configurations) built on the protected kernels.
* :class:`repro.hardware.AttentionCostModel` -- the A100 roofline model used
  to regenerate the paper's timing figures and tables.
"""

from repro.core import (
    AttentionConfig,
    DecoupledFTAttention,
    EFTAttention,
    EFTAttentionOptimized,
    FaultToleranceReport,
    ProtectionScheme,
    available_schemes,
    build_scheme,
    get_scheme,
    register_scheme,
)
from repro.fault import FaultInjector, FaultSite, FaultSpec
from repro.hardware import A100_PCIE_40GB, AttentionCostModel, AttentionWorkload

#: Unified-experiment names resolved lazily (PEP 562) so that ``python -m
#: repro.fault.runner`` / ``python -m repro.fault.sweep`` do not import those
#: modules twice through the repro.exec dependency chain.
_EXEC_EXPORTS = (
    "ExperimentResult",
    "ExperimentSpec",
    "available_executors",
    "register_executor",
    "run_experiment",
)


def __getattr__(name: str):
    if name in _EXEC_EXPORTS:
        from repro import exec as _exec

        return getattr(_exec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "AttentionConfig",
    "DecoupledFTAttention",
    "EFTAttention",
    "EFTAttentionOptimized",
    "FaultToleranceReport",
    "ProtectionScheme",
    "available_schemes",
    "build_scheme",
    "get_scheme",
    "register_scheme",
    "FaultInjector",
    "FaultSite",
    "FaultSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "available_executors",
    "register_executor",
    "run_experiment",
    "A100_PCIE_40GB",
    "AttentionCostModel",
    "AttentionWorkload",
    "__version__",
]
