"""GPU device specifications used by the analytical cost model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU for roofline-style time estimation.

    Attributes
    ----------
    name:
        Human readable device name.
    hbm_bytes:
        Total device memory capacity in bytes (drives the OOM behaviour of
        the decoupled baseline at 16 K sequence length).
    hbm_bandwidth:
        Sustained HBM bandwidth in bytes / second.
    tensor_fp16_flops:
        Peak FP16 Tensor-Core throughput in FLOP / s (FP32 accumulate).
    cuda_fp32_flops:
        Peak FP32 CUDA-core throughput in FLOP / s (element-wise work,
        reductions, checksum verification).
    sfu_exp_ops:
        Special-function-unit throughput for transcendental ops (exp) in
        op / s.  Softmax exponentiation is bound by this.
    kernel_launch_latency:
        Host-side latency of a kernel launch in seconds.
    compute_efficiency:
        Fraction of peak a well-tuned kernel sustains (attention kernels do
        not reach peak because of the softmax phase and the online rescale).
    bandwidth_efficiency:
        Fraction of peak HBM bandwidth a streaming kernel sustains.
    """

    name: str
    hbm_bytes: int
    hbm_bandwidth: float
    tensor_fp16_flops: float
    cuda_fp32_flops: float
    sfu_exp_ops: float
    kernel_launch_latency: float = 8.0e-6
    compute_efficiency: float = 0.55
    bandwidth_efficiency: float = 0.80

    @property
    def effective_tensor_flops(self) -> float:
        """Tensor-Core FLOP/s after the sustained-efficiency derating."""
        return self.tensor_fp16_flops * self.compute_efficiency

    @property
    def effective_cuda_flops(self) -> float:
        """CUDA-core FLOP/s after the sustained-efficiency derating."""
        return self.cuda_fp32_flops * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        """HBM bytes/s after the sustained-efficiency derating."""
        return self.hbm_bandwidth * self.bandwidth_efficiency

    @property
    def effective_exp_ops(self) -> float:
        """Special-function op/s after the sustained-efficiency derating."""
        return self.sfu_exp_ops * self.compute_efficiency


#: The device used throughout the paper's evaluation (Section 4).
A100_PCIE_40GB = GPUSpec(
    name="NVIDIA A100-PCIE-40GB",
    hbm_bytes=40 * 1024**3,
    hbm_bandwidth=1.555e12,
    tensor_fp16_flops=312e12,
    cuda_fp32_flops=19.5e12,
    sfu_exp_ops=4.9e12,
)
