"""GPU hardware substrate: A100 specs, HBM tracking, and a roofline cost model.

The paper's evaluation is wall-clock time on a 40 GB A100-PCIE.  Without the
physical device, the timing experiments (Figures 9-13, Tables 1-2, Figure 15)
are reproduced by an analytical model driven by exact per-kernel FLOP counts,
HBM byte traffic, and kernel-launch counts.  The model is a classic roofline:

``time = launches * launch_latency + max(flops / peak_flops, bytes / bandwidth)``

with separate peaks for Tensor-Core FP16 work, CUDA-core FP32 work and special
function (exp) work, plus an efficiency factor because real kernels do not hit
peak.  Relative orderings (EFTA vs decoupled, strided vs traditional ABFT,
SNVR vs DMR) follow directly from the quantities each scheme must move and
compute, which is the behaviour the paper's figures demonstrate.
"""

from repro.hardware.specs import A100_PCIE_40GB, GPUSpec
from repro.hardware.memory import HBMTracker, OutOfMemoryError
from repro.hardware.kernel import KernelCost, KernelLedger
from repro.hardware.costmodel import AttentionCostModel, AttentionWorkload, CostBreakdown

__all__ = [
    "A100_PCIE_40GB",
    "GPUSpec",
    "HBMTracker",
    "OutOfMemoryError",
    "KernelCost",
    "KernelLedger",
    "AttentionCostModel",
    "AttentionWorkload",
    "CostBreakdown",
]
