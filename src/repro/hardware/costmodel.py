"""Analytical (roofline) cost model for the attention fault-tolerance schemes.

Every timing experiment in the paper (Figures 9, 10, 11, 13, Tables 1 and 2,
and the model-level Figure 15) compares schemes whose runtime differences are
driven by three quantities:

* HBM traffic -- the decoupled baseline writes and re-reads the O(n^2) score
  and probability tensors, the fused EFTA kernel does not;
* kernel launches -- three per attention for the decoupled baseline, one for
  EFTA;
* redundant compute -- checksum encoding, checksum GEMM columns, verification
  sweeps, DMR re-execution, and SNVR's reduced-width checks.

The :class:`AttentionCostModel` derives those quantities exactly from the
attention workload shape and each scheme's definition, then converts them to
time with the roofline formula of :class:`repro.hardware.kernel.KernelCost`.
Absolute times are simulated; orderings, ratios and the OOM crossover are the
reproduction targets (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.kernel import KernelCost, KernelLedger
from repro.hardware.memory import HBMTracker, OutOfMemoryError
from repro.hardware.specs import A100_PCIE_40GB, GPUSpec

#: Extra cost multiplier applied to traditional (element-wise) checksum
#: verification on Tensor Cores.  The MMA thread/data layout scatters each
#: column over many threads (Figure 6), so a conventional column/row checksum
#: needs inter-thread shuffles and serialised accumulation; the strided tensor
#: checksum is designed precisely to avoid this (Section 3.3).
TRADITIONAL_ABFT_COMM_PENALTY = 2.0

#: Marginal utilisation of the checksum GEMM columns.  The 64x16x16 TiledMMA
#: replicates work along N, so the extra 8 checksum columns largely ride along
#: partially filled MMA tiles instead of displacing useful work.
CHECKSUM_GEMM_UTILIZATION = 0.5

#: CUDA-core operations charged per score element and per *extra* in-loop
#: verification stage of the unoptimised workflow (pipeline drain / sync cost
#: of interrupting the fused GEMM-softmax-GEMM pipeline to run a CCV phase).
VERIFICATION_STAGE_STALL_FLOPS = 4.0

#: Number of additional in-loop verification stages of the unoptimised EFTA
#: workflow relative to the unified-verification one (separate GEMM-I CCV and
#: per-iteration GEMM-II CCV + rowsum NVR, cf. Figure 5 vs Algorithm 1).
EXTRA_VERIFICATION_STAGES = 2

#: Extra cost multiplier applied to DMR softmax protection inside the fused
#: kernel: the duplicated softmax cannot be overlapped with the GEMM pipeline
#: and runs as a separate phase (Section 4.1, overhead breakdown discussion).
DMR_PHASE_PENALTY = 2.0

#: Width (number of columns) of the strided tensor checksum, equal to the N
#: extent of the MMA atom (Section 3.3: stride 8, 8-element-wide checksum).
TENSOR_CHECKSUM_WIDTH = 8


@dataclass(frozen=True)
class AttentionWorkload:
    """Shape of one multi-head attention computation.

    The paper keeps the *total* token count fixed at 16 K and varies
    ``seq_len`` while shrinking ``batch`` accordingly; :meth:`with_total_tokens`
    builds such sweeps.
    """

    batch: int
    heads: int
    seq_len: int
    head_dim: int
    block_size: int = 128
    bytes_per_element: int = 2  # FP16 storage

    def __post_init__(self) -> None:
        if min(self.batch, self.heads, self.seq_len, self.head_dim) <= 0:
            raise ValueError("workload dimensions must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @classmethod
    def with_total_tokens(
        cls,
        seq_len: int,
        total_tokens: int = 16 * 1024,
        heads: int = 16,
        head_dim: int = 64,
        block_size: int = 128,
    ) -> "AttentionWorkload":
        """Build the paper's sweep point: batch chosen so batch*seq_len == total."""
        batch = max(1, total_tokens // seq_len)
        return cls(batch=batch, heads=heads, seq_len=seq_len, head_dim=head_dim, block_size=block_size)

    @property
    def groups(self) -> int:
        """Number of independent (batch, head) attention problems."""
        return self.batch * self.heads

    @property
    def hidden_dim(self) -> int:
        """Model hidden dimension (heads * head_dim)."""
        return self.heads * self.head_dim

    @property
    def n_blocks(self) -> int:
        """Number of sequence blocks of ``block_size`` (ceil division)."""
        return -(-self.seq_len // self.block_size)

    @property
    def qkv_bytes(self) -> float:
        """Bytes of one of Q, K or V in HBM."""
        return self.groups * self.seq_len * self.head_dim * self.bytes_per_element

    @property
    def score_bytes(self) -> float:
        """Bytes of the full score (or probability) tensor S in HBM."""
        return self.groups * self.seq_len * self.seq_len * self.bytes_per_element

    @property
    def gemm_flops(self) -> float:
        """Tensor-Core FLOPs of one of the two attention GEMMs (QK^T or PV)."""
        return 2.0 * self.groups * self.seq_len * self.seq_len * self.head_dim

    @property
    def score_elements(self) -> float:
        """Number of elements of the score tensor across all groups."""
        return float(self.groups) * self.seq_len * self.seq_len


@dataclass
class CostBreakdown:
    """Base cost of a scheme plus its named fault-tolerance components."""

    name: str
    spec: GPUSpec
    base: KernelLedger
    protection: dict[str, KernelCost] = field(default_factory=dict)

    @property
    def base_time(self) -> float:
        """Unprotected execution time in seconds."""
        return self.base.total_time()

    @property
    def protection_time(self) -> float:
        """Total fault-tolerance time in seconds."""
        return sum(c.time_seconds(self.spec) for c in self.protection.values())

    @property
    def total_time(self) -> float:
        """Protected execution time in seconds."""
        return self.base_time + self.protection_time

    @property
    def overhead(self) -> float:
        """Fault-tolerance overhead as a fraction of the base time."""
        return self.protection_time / self.base_time if self.base_time else 0.0

    def component_time(self, name: str) -> float:
        """Time of one named protection component in seconds."""
        return self.protection[name].time_seconds(self.spec)

    def component_overhead(self, name: str) -> float:
        """Overhead fraction contributed by one named protection component."""
        return self.component_time(name) / self.base_time if self.base_time else 0.0


class AttentionCostModel:
    """Derives kernel costs for every attention / protection scheme in the paper."""

    def __init__(self, workload: AttentionWorkload, spec: GPUSpec = A100_PCIE_40GB):
        self.workload = workload
        self.spec = spec

    # ------------------------------------------------------------------ #
    # Unprotected baselines
    # ------------------------------------------------------------------ #
    def flash_attention_cost(self) -> KernelCost:
        """Fused (flash-style) attention: one kernel, O(n) HBM traffic."""
        w = self.workload
        softmax_cuda = 5.0 * w.score_elements  # max-reduce, subtract, rowsum, rescale, normalize
        return KernelCost(
            name="e2e_attention",
            tensor_flops=2.0 * w.gemm_flops,
            cuda_flops=softmax_cuda,
            exp_ops=w.score_elements,
            bytes_read=3.0 * w.qkv_bytes,
            bytes_written=w.qkv_bytes,
            launches=1,
        )

    def decoupled_attention_pipeline(self, track_memory: bool = False) -> KernelLedger:
        """Unprotected decoupled attention: 3 kernels, O(n^2) intermediates.

        With ``track_memory`` the S and P tensors are registered against the
        40 GB HBM capacity and :class:`OutOfMemoryError` propagates, which is
        how Figure 9's 16 K OOM point is reproduced.
        """
        w = self.workload
        if track_memory:
            tracker = HBMTracker(self.spec)
            tracker.allocate("qkv+o", 4 * int(w.qkv_bytes))
            # S is produced by kernel I and consumed by the softmax kernel,
            # which in turn materialises P for kernel II: both live at once,
            # and the DMR softmax keeps a duplicate result for its comparison.
            tracker.allocate("scores", int(w.score_bytes))
            tracker.allocate("probs", int(w.score_bytes))
            tracker.allocate("dmr_duplicate", int(w.score_bytes))
        ledger = KernelLedger(self.spec)
        ledger.add(
            KernelCost(
                name="gemm_qk",
                tensor_flops=w.gemm_flops,
                bytes_read=2.0 * w.qkv_bytes,
                bytes_written=w.score_bytes,
                launches=1,
            )
        )
        ledger.add(
            KernelCost(
                name="row_softmax",
                cuda_flops=4.0 * w.score_elements,
                exp_ops=w.score_elements,
                bytes_read=w.score_bytes,
                bytes_written=w.score_bytes,
                launches=1,
            )
        )
        ledger.add(
            KernelCost(
                name="gemm_pv",
                tensor_flops=w.gemm_flops,
                bytes_read=w.score_bytes + w.qkv_bytes,
                bytes_written=w.qkv_bytes,
                launches=1,
            )
        )
        return ledger

    # ------------------------------------------------------------------ #
    # Protection component costs
    # ------------------------------------------------------------------ #
    def traditional_abft_cost(self, which_gemm: str) -> KernelCost:
        """Element-wise (single-row/column) ABFT on one of the attention GEMMs.

        Encoding sums full rows/columns of the operands, the checksum GEMM
        adds two rows and two columns, and verification re-reduces the full
        result tensor.  On Tensor Cores the reductions cross thread ownership
        boundaries, modelled by :data:`TRADITIONAL_ABFT_COMM_PENALTY`.
        """
        w = self.workload
        encode_cuda = 4.0 * w.groups * w.seq_len * w.head_dim  # 2 checksums x 2 operands
        checksum_gemm = 8.0 * w.groups * w.seq_len * w.head_dim  # 2 rows + 2 cols of length N, depth d
        verify_cuda = 3.0 * w.score_elements  # weighted + unweighted re-reductions of C
        return KernelCost(
            name=f"traditional_abft_{which_gemm}",
            tensor_flops=checksum_gemm,
            cuda_flops=TRADITIONAL_ABFT_COMM_PENALTY * (encode_cuda + verify_cuda),
            bytes_read=0.08 * w.qkv_bytes,
            bytes_written=0.08 * w.qkv_bytes,
            launches=0,
        )

    def strided_abft_cost(self, which_gemm: str) -> KernelCost:
        """Strided (tensor-checksum) ABFT on one of the attention GEMMs.

        The checksum is 8 columns wide per block, encoded by intra-thread
        strided accumulation (no shuffles), and the checksum GEMM only adds
        ``TENSOR_CHECKSUM_WIDTH`` columns per block-column iteration.
        """
        w = self.workload
        s = TENSOR_CHECKSUM_WIDTH
        encode_cuda = 2.0 * w.groups * w.seq_len * w.head_dim  # strided add over K (2 checksums)
        # Checksum GEMM: for every (row block, col block) pair, Q_i (B x d) times
        # the d x s checksum, for both weight vectors; the columns mostly fill
        # spare N capacity of the TiledMMA tile (CHECKSUM_GEMM_UTILIZATION).
        checksum_gemm = (
            CHECKSUM_GEMM_UTILIZATION
            * 2.0
            * 2.0
            * w.groups
            * w.seq_len
            * w.n_blocks
            * s
            * w.head_dim
        )
        # Verification: one intra-thread strided accumulation over the produced
        # block plus a comparison against the s-wide checksum.
        verify_cuda = 0.5 * w.score_elements + 2.0 * w.groups * w.seq_len * w.n_blocks * s
        return KernelCost(
            name=f"strided_abft_{which_gemm}",
            tensor_flops=checksum_gemm,
            cuda_flops=encode_cuda + verify_cuda,
            bytes_read=0.02 * w.qkv_bytes,
            bytes_written=0.02 * w.qkv_bytes,
            launches=0,
        )

    def dmr_softmax_cost(self, fused: bool = True) -> KernelCost:
        """Dual modular redundancy for the softmax: full re-execution + compare."""
        w = self.workload
        redo_exp = w.score_elements
        redo_cuda = 4.0 * w.score_elements
        compare_cuda = w.score_elements
        penalty = DMR_PHASE_PENALTY if fused else 1.0
        return KernelCost(
            name="dmr_softmax",
            cuda_flops=penalty * (redo_cuda + compare_cuda),
            exp_ops=penalty * redo_exp,
            bytes_read=0.0 if fused else w.score_bytes,
            bytes_written=0.0 if fused else w.score_bytes,
            launches=0,
        )

    def snvr_softmax_cost(self, unified: bool = False) -> KernelCost:
        """Selective neuron value restriction for the softmax phase.

        The exponential is protected by propagating the 8-wide tensor checksum
        through the subtraction and EXP (checksum reuse), and the reduce-sum by
        a range restriction.  With ``unified`` verification the rowsum check
        happens once per output block instead of once per inner iteration.
        """
        w = self.workload
        s = TENSOR_CHECKSUM_WIDTH
        checksum_positions = w.groups * w.seq_len * w.n_blocks * s
        checksum_exp = checksum_positions
        product_verify = 1.0 * w.score_elements  # multiply chain + compare against checksum
        if unified:
            range_check = 2.0 * w.groups * w.seq_len
        else:
            range_check = 2.0 * w.groups * w.seq_len * w.n_blocks
        return KernelCost(
            name="snvr_softmax",
            cuda_flops=product_verify + range_check + checksum_positions,
            exp_ops=checksum_exp,
            launches=0,
        )

    def gemm2_checksum_update_cost(self, unified: bool = True) -> KernelCost:
        """Checksum propagation + verification for GEMM II / rescale / normalise.

        The checksum accumulator O^{c1,c2} is updated (rescaled and GEMMed
        against V's tensor checksum) every iteration; with unified
        verification it is only *verified* once per output block, otherwise at
        every iteration (the dominant verification term in unoptimised EFTA).
        """
        w = self.workload
        s = TENSOR_CHECKSUM_WIDTH
        # Checksum GEMM: P_ij (B x B) times V checksum (B x s) per block pair, 2 weights.
        checksum_gemm = (
            CHECKSUM_GEMM_UTILIZATION
            * 2.0
            * 2.0
            * w.groups
            * w.seq_len
            * w.n_blocks
            * w.block_size
            * s
        )
        rescale_cuda = 2.0 * w.groups * w.seq_len * w.n_blocks * s
        if unified:
            verify_cuda = 2.0 * w.groups * w.seq_len * w.head_dim
        else:
            verify_cuda = 2.0 * w.groups * w.seq_len * w.head_dim * w.n_blocks
        return KernelCost(
            name="gemm2_checksum",
            tensor_flops=checksum_gemm,
            cuda_flops=rescale_cuda + verify_cuda,
            launches=0,
        )

    # ------------------------------------------------------------------ #
    # Full schemes
    # ------------------------------------------------------------------ #
    def decoupled_ft_breakdown(self, track_memory: bool = False) -> CostBreakdown:
        """Traditional operation-level protection on the decoupled pipeline."""
        base = self.decoupled_attention_pipeline(track_memory=track_memory)
        w = self.workload
        protection = {
            "qk_protection": self.traditional_abft_cost("qk"),
            "softmax_protection": self.dmr_softmax_cost(fused=False),
            "pv_protection": self.traditional_abft_cost("pv"),
            # The decoupled DMR kernel also re-reads the score tensor for its
            # duplicate pass, and checksummed operands are stored alongside the
            # originals -- extra HBM traffic charged here.
            "checksum_traffic": KernelCost(
                name="checksum_traffic",
                bytes_read=0.5 * w.score_bytes,
                bytes_written=0.25 * w.score_bytes,
                launches=0,
            ),
        }
        return CostBreakdown(name="decoupled_ft", spec=self.spec, base=base, protection=protection)

    def efta_breakdown(
        self,
        qk_protection: str = "strided",
        softmax_protection: str = "snvr",
        pv_protection: str = "strided",
        unified_verification: bool = False,
    ) -> CostBreakdown:
        w = self.workload
        """End-to-end fault tolerant attention with configurable protection.

        Parameters
        ----------
        qk_protection, pv_protection:
            ``"strided"`` (tensor checksum), ``"traditional"`` (element
            checksum) or ``"none"``.
        softmax_protection:
            ``"snvr"``, ``"dmr"`` or ``"none"``.
        unified_verification:
            Use the optimised single-verification workflow of Algorithm 1
            (EFTA-opt in Tables 1 and 2).
        """
        base = KernelLedger(self.spec)
        base.add(self.flash_attention_cost())
        protection: dict[str, KernelCost] = {}

        if qk_protection == "strided":
            protection["qk_protection"] = self.strided_abft_cost("qk")
        elif qk_protection == "traditional":
            protection["qk_protection"] = self.traditional_abft_cost("qk")
        elif qk_protection != "none":
            raise ValueError(f"unknown qk_protection {qk_protection!r}")

        if softmax_protection == "snvr":
            protection["softmax_protection"] = self.snvr_softmax_cost(unified=unified_verification)
        elif softmax_protection == "dmr":
            protection["softmax_protection"] = self.dmr_softmax_cost(fused=True)
        elif softmax_protection != "none":
            raise ValueError(f"unknown softmax_protection {softmax_protection!r}")

        if pv_protection == "strided":
            encode_v = KernelCost(
                name="pv_protection",
                cuda_flops=2.0 * w.groups * w.seq_len * w.head_dim,
                launches=0,
            )
            pv = encode_v.merged(
                self.gemm2_checksum_update_cost(unified=unified_verification), name="pv_protection"
            )
            protection["pv_protection"] = pv
        elif pv_protection == "traditional":
            protection["pv_protection"] = self.traditional_abft_cost("pv")
        elif pv_protection != "none":
            raise ValueError(f"unknown pv_protection {pv_protection!r}")

        if not unified_verification and qk_protection != "none":
            # The unoptimised workflow inserts separate CCV phases inside the
            # inner loop (distinct GEMM-I verification plus per-iteration
            # GEMM-II / rowsum checks); each phase drains the fused pipeline.
            stall_cuda = (
                EXTRA_VERIFICATION_STAGES * VERIFICATION_STAGE_STALL_FLOPS + 2.0
            ) * w.score_elements
            protection["per_iteration_verification"] = KernelCost(
                name="per_iteration_verification", cuda_flops=stall_cuda, launches=0
            )

        label = "efta_optimized" if unified_verification else "efta"
        return CostBreakdown(name=label, spec=self.spec, base=base, protection=protection)

    # ------------------------------------------------------------------ #
    # Memory footprints
    # ------------------------------------------------------------------ #
    def decoupled_peak_bytes(self) -> float:
        """Peak HBM bytes of the decoupled FT pipeline (O(n^2) intermediates).

        S and P both live across kernel boundaries, the DMR softmax keeps a
        duplicate of its result for the comparison, and the encoded checksum
        rows/columns add a small fraction on top.
        """
        w = self.workload
        return 4.0 * w.qkv_bytes + 3.0 * w.score_bytes + 0.25 * w.score_bytes

    def efta_peak_bytes(self) -> float:
        """Peak HBM bytes of the fused EFTA kernel (O(n) footprint)."""
        w = self.workload
        checksum_bytes = 2.0 * w.groups * w.seq_len * TENSOR_CHECKSUM_WIDTH * 4
        return 4.0 * w.qkv_bytes + checksum_bytes

    def decoupled_fits_in_memory(self) -> bool:
        """Whether the decoupled pipeline fits in the device HBM."""
        tracker = HBMTracker(self.spec)
        try:
            tracker.allocate("decoupled", int(self.decoupled_peak_bytes()))
        except OutOfMemoryError:
            return False
        return True
