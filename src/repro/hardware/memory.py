"""HBM capacity tracking.

The decoupled fault-tolerance baseline materialises the O(n^2) score and
probability tensors in device memory; on a 40 GB A100 this runs out of memory
at 16 K sequence length for the large-model configuration (Figure 9).  The
:class:`HBMTracker` reproduces that behaviour: kernels register allocations
and frees, peak usage is recorded, and exceeding capacity raises
:class:`OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.specs import A100_PCIE_40GB, GPUSpec


class OutOfMemoryError(RuntimeError):
    """Raised when a simulated allocation exceeds the device HBM capacity."""


@dataclass
class Allocation:
    """A single live allocation inside the tracker."""

    name: str
    nbytes: int


@dataclass
class HBMTracker:
    """Book-keeping for simulated device-memory allocations.

    Parameters
    ----------
    spec:
        GPU whose capacity bounds the allocations.
    reserved_bytes:
        Memory assumed taken by the framework / model weights before the
        attention kernels run (CUDA context, cuBLAS workspaces, ...).
    """

    spec: GPUSpec = A100_PCIE_40GB
    reserved_bytes: int = 2 * 1024**3
    _live: dict[str, Allocation] = field(default_factory=dict)
    _peak: int = 0

    def __post_init__(self) -> None:
        self._peak = self.reserved_bytes

    @property
    def capacity(self) -> int:
        """Total HBM capacity in bytes."""
        return self.spec.hbm_bytes

    @property
    def in_use(self) -> int:
        """Bytes currently allocated (including the reserved baseline)."""
        return self.reserved_bytes + sum(a.nbytes for a in self._live.values())

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`in_use` over the tracker's lifetime."""
        return self._peak

    def allocate(self, name: str, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` under ``name``; raise on capacity exhaustion."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if name in self._live:
            raise ValueError(f"allocation {name!r} already live")
        projected = self.in_use + nbytes
        if projected > self.capacity:
            raise OutOfMemoryError(
                f"allocating {nbytes / 1024**3:.2f} GiB for {name!r} exceeds "
                f"{self.spec.name} capacity "
                f"({projected / 1024**3:.2f} GiB > {self.capacity / 1024**3:.2f} GiB)"
            )
        alloc = Allocation(name=name, nbytes=nbytes)
        self._live[name] = alloc
        self._peak = max(self._peak, projected)
        return alloc

    def free(self, name: str) -> None:
        """Release a previously allocated buffer."""
        if name not in self._live:
            raise KeyError(f"no live allocation named {name!r}")
        del self._live[name]

    def free_all(self) -> None:
        """Release every live allocation (end of a kernel pipeline)."""
        self._live.clear()

    def would_fit(self, nbytes: int) -> bool:
        """Whether an additional allocation of ``nbytes`` fits right now."""
        return self.in_use + nbytes <= self.capacity
