"""Kernel cost records and the per-pipeline kernel ledger.

A :class:`KernelCost` captures everything the roofline model needs to price a
single kernel launch: Tensor-Core FLOPs, CUDA-core FLOPs, special-function
(exp) operations, HBM bytes read and written, and how many launches the cost
represents.  A :class:`KernelLedger` accumulates the costs of a whole
pipeline (e.g. the three kernels of the decoupled baseline, or the single
fused EFTA kernel) so that benchmarks can report both totals and per-phase
breakdowns (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.specs import GPUSpec


@dataclass(frozen=True)
class KernelCost:
    """Resource consumption of one (or several identical) kernel launches."""

    name: str
    tensor_flops: float = 0.0
    cuda_flops: float = 0.0
    exp_ops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    launches: int = 1

    @property
    def bytes_total(self) -> float:
        """Total HBM traffic (read + write) in bytes."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "KernelCost":
        """Return a copy with every resource multiplied by ``factor``."""
        return KernelCost(
            name=self.name,
            tensor_flops=self.tensor_flops * factor,
            cuda_flops=self.cuda_flops * factor,
            exp_ops=self.exp_ops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            launches=self.launches,
        )

    def merged(self, other: "KernelCost", name: str | None = None) -> "KernelCost":
        """Fuse two costs into a single launch (used when work is fused into
        one kernel: launches are *not* added, resources are)."""
        return KernelCost(
            name=name or self.name,
            tensor_flops=self.tensor_flops + other.tensor_flops,
            cuda_flops=self.cuda_flops + other.cuda_flops,
            exp_ops=self.exp_ops + other.exp_ops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            launches=max(self.launches, other.launches),
        )

    def time_seconds(self, spec: GPUSpec) -> float:
        """Roofline execution-time estimate of this cost on ``spec``.

        Compute phases on different units (Tensor Cores, CUDA cores, SFUs)
        overlap poorly inside a single kernel because they are data dependent
        (GEMM -> softmax -> GEMM), so their times add; the memory phase
        overlaps with compute, so the kernel takes the max of the two.
        """
        compute = (
            self.tensor_flops / spec.effective_tensor_flops
            + self.cuda_flops / spec.effective_cuda_flops
            + self.exp_ops / spec.effective_exp_ops
        )
        memory = self.bytes_total / spec.effective_bandwidth
        return self.launches * spec.kernel_launch_latency + max(compute, memory)


@dataclass
class KernelLedger:
    """Ordered collection of kernel costs forming one execution pipeline."""

    spec: GPUSpec
    costs: list[KernelCost] = field(default_factory=list)

    def add(self, cost: KernelCost) -> KernelCost:
        """Append a kernel cost to the pipeline and return it."""
        self.costs.append(cost)
        return cost

    def total_time(self) -> float:
        """Sum of the roofline times of every kernel in the pipeline."""
        return sum(c.time_seconds(self.spec) for c in self.costs)

    def total_bytes(self) -> float:
        """Total HBM traffic of the pipeline."""
        return sum(c.bytes_total for c in self.costs)

    def total_launches(self) -> int:
        """Total number of kernel launches in the pipeline."""
        return sum(c.launches for c in self.costs)

    def time_of(self, name: str) -> float:
        """Roofline time of the kernels whose name matches ``name``."""
        return sum(c.time_seconds(self.spec) for c in self.costs if c.name == name)

    def names(self) -> list[str]:
        """Kernel names in pipeline order."""
        return [c.name for c in self.costs]
