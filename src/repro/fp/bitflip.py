"""Bit-level views of floating point values and bit-flip primitives.

Soft errors in arithmetic units manifest as flipped bits in the binary
representation of a computed value (§2.2 of the paper).  These helpers convert
between floats and their IEEE-754 bit patterns and flip chosen bits, for both
half precision (16-bit) and single precision (32-bit) values.
"""

from __future__ import annotations

import numpy as np

_UINT_FOR = {
    np.dtype(np.float16): np.uint16,
    np.dtype(np.float32): np.uint32,
    np.dtype(np.float64): np.uint64,
}

_BITS_FOR = {
    np.dtype(np.float16): 16,
    np.dtype(np.float32): 32,
    np.dtype(np.float64): 64,
}


def _uint_dtype(dtype: np.dtype) -> np.dtype:
    dtype = np.dtype(dtype)
    try:
        return np.dtype(_UINT_FOR[dtype])
    except KeyError as exc:  # pragma: no cover - defensive
        raise TypeError(f"unsupported float dtype for bit access: {dtype}") from exc


def bit_width(dtype: np.dtype | type) -> int:
    """Number of bits in the representation of ``dtype``."""
    return _BITS_FOR[np.dtype(dtype)]


def float_to_bits(x: np.ndarray | float, dtype: np.dtype | type = np.float32) -> np.ndarray:
    """Return the IEEE-754 bit pattern of ``x`` as an unsigned integer array."""
    arr = np.asarray(x, dtype=dtype)
    return arr.view(_uint_dtype(arr.dtype))


def bits_to_float(bits: np.ndarray, dtype: np.dtype | type = np.float32) -> np.ndarray:
    """Inverse of :func:`float_to_bits`."""
    dtype = np.dtype(dtype)
    bits = np.asarray(bits, dtype=_uint_dtype(dtype))
    return bits.view(dtype)


def flip_bit(value: float, bit: int, dtype: np.dtype | type = np.float32) -> float:
    """Flip a single bit of a scalar float and return the corrupted value.

    Parameters
    ----------
    value:
        The original scalar.
    bit:
        Bit index, 0 = least-significant mantissa bit up to ``width-1`` = sign.
    dtype:
        Representation in which the flip happens (float16 or float32).
    """
    dtype = np.dtype(dtype)
    width = bit_width(dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit index {bit} out of range for {dtype} ({width} bits)")
    udtype = _uint_dtype(dtype)
    bits = np.asarray(value, dtype=dtype).view(udtype)
    mask = udtype.type(1) << udtype.type(bit)
    corrupted = np.bitwise_xor(bits, mask)
    return float(corrupted.view(dtype))


def flip_bit_array(
    array: np.ndarray,
    index: tuple[int, ...],
    bit: int,
    dtype: np.dtype | type | None = None,
) -> float:
    """Flip one bit of ``array[index]`` in place; return the new value.

    If ``dtype`` is given, the value is first quantized to ``dtype`` (e.g. an
    FP32 accumulator value corrupted while living in an FP16 register) and the
    flip happens in that representation; the corrupted value is then written
    back in the array's own dtype.
    """
    rep_dtype = np.dtype(dtype) if dtype is not None else array.dtype
    original = float(array[index])
    corrupted = flip_bit(original, bit, rep_dtype)
    array[index] = corrupted
    return float(array[index])


def random_bit_positions(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    n_errors: int,
    width: int = 16,
) -> list[tuple[tuple[int, ...], int]]:
    """Draw ``n_errors`` distinct (element index, bit index) fault locations.

    Used by the Monte-Carlo campaigns of Figure 12 to place bit errors
    uniformly over a tensor of ``shape`` with ``width``-bit elements.
    """
    total_elems = int(np.prod(shape))
    if n_errors > total_elems:
        raise ValueError("cannot place more errors than elements")
    flat = rng.choice(total_elems, size=n_errors, replace=False)
    bits = rng.integers(0, width, size=n_errors)
    positions = []
    for f, b in zip(flat, bits):
        positions.append((tuple(int(i) for i in np.unravel_index(int(f), shape)), int(b)))
    return positions
