"""Floating-point substrate: FP16 emulation and bit-level fault primitives.

The paper's kernels run on Tensor Cores with half-precision (FP16) inputs and
single-precision (FP32) accumulation.  Soft errors are modelled as bit flips
inside those representations.  This package provides:

* :mod:`repro.fp.float16` -- mixed-precision helpers that mimic the Tensor
  Core behaviour (FP16 operands, FP32 accumulate) on top of NumPy.
* :mod:`repro.fp.bitflip` -- bit-level views of FP16/FP32 values and the
  bit-flip primitives used by the fault injector.
"""

from repro.fp.float16 import (
    FP16_MAX,
    FP16_MIN_NORMAL,
    fp16_matmul,
    fp16_quantize,
    machine_epsilon,
    to_fp16,
    to_fp32,
)
from repro.fp.bitflip import (
    bits_to_float,
    flip_bit,
    flip_bit_array,
    float_to_bits,
    random_bit_positions,
)

__all__ = [
    "FP16_MAX",
    "FP16_MIN_NORMAL",
    "fp16_matmul",
    "fp16_quantize",
    "machine_epsilon",
    "to_fp16",
    "to_fp32",
    "bits_to_float",
    "flip_bit",
    "flip_bit_array",
    "float_to_bits",
    "random_bit_positions",
]
