"""Mixed-precision (FP16 operand / FP32 accumulate) arithmetic helpers.

The SM80 ``16x8x16 F32F16F16F32`` MMA instruction used throughout the paper
multiplies two half-precision tiles and accumulates the products in single
precision.  The helpers here reproduce that numerical behaviour with NumPy so
that checksum round-off (the source of false alarms in Figures 12 and 14)
matches what a Tensor Core would produce to first order.
"""

from __future__ import annotations

import numpy as np

#: Largest finite half-precision value.
FP16_MAX: float = float(np.finfo(np.float16).max)

#: Smallest positive normal half-precision value.
FP16_MIN_NORMAL: float = float(np.finfo(np.float16).tiny)


def to_fp16(x: np.ndarray | float) -> np.ndarray:
    """Cast ``x`` to half precision (values out of range saturate to inf)."""
    return np.asarray(x, dtype=np.float16)


def to_fp32(x: np.ndarray | float) -> np.ndarray:
    """Cast ``x`` to single precision."""
    return np.asarray(x, dtype=np.float32)


def fp16_quantize(x: np.ndarray | float) -> np.ndarray:
    """Round ``x`` through half precision and return it as float32.

    This models storing an intermediate result to an FP16 register/shared
    memory tile and reading it back for the next computation stage.
    """
    return np.asarray(x, dtype=np.float16).astype(np.float32)


def machine_epsilon(dtype: np.dtype | type = np.float16) -> float:
    """Return the unit round-off of ``dtype`` (used to calibrate thresholds)."""
    return float(np.finfo(dtype).eps)


def fp16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply ``a @ b`` the way a Tensor Core MMA does.

    Operands are quantized to FP16; the multiply-accumulate is carried out in
    FP32 and the result is returned in FP32 (the paper keeps the accumulator
    and the final attention output in FP32 before the final store).

    Parameters
    ----------
    a, b:
        Arrays whose trailing two dimensions are multiplied.  Batched inputs
        (any number of leading dimensions) are supported.

    Returns
    -------
    np.ndarray
        ``a @ b`` with float32 dtype.
    """
    a16 = np.asarray(a, dtype=np.float16).astype(np.float32)
    b16 = np.asarray(b, dtype=np.float16).astype(np.float32)
    return np.matmul(a16, b16, dtype=np.float32)
