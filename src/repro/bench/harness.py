"""Throughput benchmark harness: trials/sec per kernel, scalar vs batched.

Every benchmark case pins a small campaign configuration and times it twice
through the real execution engine (``repro.exec``): once with
``REPRO_TRIAL_BATCH=1`` (the scalar oracle path, every trial its own kernel
call) and once with the requested batch size (the stacked tensor-program
path).  The per-case trials/sec pair and their ratio land in a
``BENCH_<n>.json`` file, giving the repo a measured performance trajectory:
each PR commits a new snapshot, and CI's ``bench-smoke`` job fails if the
batched path regresses below loose per-campaign floors on the pinned config.

Both paths produce byte-identical JSONL records (see
``tests/fault/test_batched.py``), so the ratio is a pure execution-speed
measurement, not a numerics trade-off.

Usage::

    python -m repro bench --out BENCH_1.json          # full pinned suite
    python -m repro bench --smoke --out bench.json    # tiny CI configuration
    python -m repro bench --validate BENCH_1.json     # schema check only
    python benchmarks/bench_throughput.py [...]       # same entry point
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

#: Bumped whenever the payload layout changes; validators pin it.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCase:
    """One pinned campaign configuration to time."""

    name: str
    campaign: str
    n_trials: int
    params: dict = field(default_factory=dict)
    seed: int = 0


def default_cases() -> list[BenchCase]:
    """The full pinned suite: every fault campaign on a small fixed workload."""
    thresholds = [0.1, 0.3, 0.5]
    return [
        # Monte-Carlo fault campaigns run deliberately scaled-down models, so
        # the regime that matters is small tensors where per-trial Python and
        # kernel-call overhead dominates -- which is exactly what batching
        # removes.  Larger hidden/seq sizes shift time into shared elementwise
        # ops (fp64 tanh in gelu) and the ratio shrinks; see README.
        BenchCase(
            name="transformer_inference/none",
            campaign="transformer_inference",
            n_trials=256,
            params={"scheme": "none", "hidden_dim": 16, "seq_len": 8},
        ),
        # Protected schemes ride the stacked path too: the fused EFTA kernel
        # (unified verification -- the paper's headline configuration), and
        # the decoupled ABFT+DMR baseline.
        BenchCase(
            name="transformer_inference/efta_unified",
            campaign="transformer_inference",
            n_trials=256,
            params={"scheme": "efta_unified", "hidden_dim": 16, "seq_len": 8},
        ),
        BenchCase(
            name="transformer_inference/decoupled",
            campaign="transformer_inference",
            n_trials=128,
            params={"scheme": "decoupled", "hidden_dim": 16, "seq_len": 8},
        ),
        BenchCase(
            name="abft_error_coverage/tensor",
            campaign="abft_error_coverage",
            n_trials=128,
            params={"bit_error_rate": 1e-7, "rows": 64, "cols": 64, "depth": 32},
        ),
        BenchCase(
            name="abft_error_coverage/element",
            campaign="abft_error_coverage",
            n_trials=128,
            params={
                "scheme": "element",
                "bit_error_rate": 1e-7,
                "rows": 64,
                "cols": 64,
                "depth": 32,
            },
        ),
        BenchCase(
            name="abft_detection_sweep",
            campaign="abft_detection_sweep",
            n_trials=128,
            params={"thresholds": thresholds, "rows": 64, "cols": 64, "depth": 64},
        ),
        BenchCase(
            name="snvr_detection_sweep",
            campaign="snvr_detection_sweep",
            n_trials=128,
            params={"thresholds": thresholds, "rows": 64, "cols": 64, "depth": 64},
        ),
        BenchCase(
            name="restriction_error_distribution/selective",
            campaign="restriction_error_distribution",
            n_trials=64,
            params={"method": "selective", "seq_len": 128, "head_dim": 32, "block_size": 16},
        ),
        # This campaign drives the EFTA kernel directly (no transformer
        # around it) and has no batched trial kernel; the case tracks the
        # scalar baseline (speedup ~1.0 by construction).
        BenchCase(
            name="efta_site_resilience/gemm_qk",
            campaign="efta_site_resilience",
            n_trials=32,
            params={"site": "gemm_qk", "seq_len": 64, "head_dim": 32, "block_size": 32},
        ),
    ]


def smoke_cases() -> list[BenchCase]:
    """A tiny three-case configuration for the CI ``bench-smoke`` job."""
    return [
        BenchCase(
            name="transformer_inference/none",
            campaign="transformer_inference",
            n_trials=64,
            params={"scheme": "none", "hidden_dim": 16, "seq_len": 8},
        ),
        BenchCase(
            name="transformer_inference/efta_unified",
            campaign="transformer_inference",
            n_trials=64,
            params={"scheme": "efta_unified", "hidden_dim": 16, "seq_len": 8},
        ),
        BenchCase(
            name="abft_error_coverage/tensor",
            campaign="abft_error_coverage",
            n_trials=32,
            params={"bit_error_rate": 1e-7, "rows": 32, "cols": 32, "depth": 16},
        ),
    ]


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def _time_once(case: BenchCase, executor: str) -> float:
    from repro.exec.engine import ExperimentRunner
    from repro.exec.spec import ExperimentSpec
    from repro.fault.runner import CampaignSpec

    spec = ExperimentSpec.from_campaign(
        CampaignSpec(
            campaign=case.campaign, n_trials=case.n_trials, seed=case.seed, params=case.params
        )
    )
    start = time.perf_counter()
    ExperimentRunner(spec, executor=executor).run()
    return time.perf_counter() - start


def _time_path(case: BenchCase, batch: int, executor: str, repeats: int) -> dict:
    from repro.fault.runner import TRIAL_BATCH_ENV

    previous = os.environ.get(TRIAL_BATCH_ENV)
    os.environ[TRIAL_BATCH_ENV] = str(batch)
    try:
        best = min(_time_once(case, executor) for _ in range(max(1, repeats)))
    finally:
        if previous is None:
            os.environ.pop(TRIAL_BATCH_ENV, None)
        else:
            os.environ[TRIAL_BATCH_ENV] = previous
    return {
        "seconds": best,
        "trials_per_sec": case.n_trials / best if best > 0 else float("inf"),
    }


def run_benchmark(
    cases: Sequence[BenchCase] | None = None,
    batch: int = 32,
    repeats: int = 3,
    executor: str = "serial",
    bench_id: int = 1,
) -> dict:
    """Time every case scalar vs batched and return the ``BENCH_*`` payload."""
    if batch < 2:
        raise ValueError("batch must be >= 2 (1 is the scalar baseline)")
    cases = list(default_cases() if cases is None else cases)
    if not cases:
        raise ValueError("no benchmark cases selected")
    results = []
    for case in cases:
        # One untimed warm-up run populates the per-worker fixture caches and
        # BLAS thread pools, so neither timed path pays first-use costs.
        _time_path(case, batch=batch, executor=executor, repeats=1)
        scalar = _time_path(case, batch=1, executor=executor, repeats=repeats)
        batched = _time_path(case, batch=batch, executor=executor, repeats=repeats)
        results.append(
            {
                "name": case.name,
                "campaign": case.campaign,
                "n_trials": case.n_trials,
                "seed": case.seed,
                "params": json.loads(json.dumps(case.params)),
                "scalar": scalar,
                "batched": batched,
                "speedup": scalar["seconds"] / batched["seconds"],
            }
        )
    import numpy

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench_id": int(bench_id),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "executor": executor,
        "trial_batch": int(batch),
        "repeats": int(repeats),
        "host": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "cases": results,
    }


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
def validate_bench_payload(data: object) -> list[str]:
    """Schema-check one ``BENCH_*.json`` payload; returns the problems found."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"payload must be a JSON object, got {type(data).__name__}"]
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version must be {BENCH_SCHEMA_VERSION}, got {data.get('schema_version')!r}"
        )
    for key, kind in [
        ("bench_id", int),
        ("created", str),
        ("executor", str),
        ("trial_batch", int),
        ("repeats", int),
        ("host", dict),
        ("cases", list),
    ]:
        if not isinstance(data.get(key), kind):
            problems.append(f"missing or mistyped field {key!r} (want {kind.__name__})")
    cases = data.get("cases")
    if isinstance(cases, list):
        if not cases:
            problems.append("cases must be non-empty")
        for i, case in enumerate(cases):
            if not isinstance(case, dict):
                problems.append(f"cases[{i}] must be an object")
                continue
            for key, kind in [
                ("name", str),
                ("campaign", str),
                ("n_trials", int),
                ("seed", int),
                ("params", dict),
                ("scalar", dict),
                ("batched", dict),
                ("speedup", (int, float)),
            ]:
                if not isinstance(case.get(key), kind):
                    problems.append(f"cases[{i}] missing or mistyped field {key!r}")
            for path in ("scalar", "batched"):
                timing = case.get(path)
                if not isinstance(timing, dict):
                    continue
                for key in ("seconds", "trials_per_sec"):
                    value = timing.get(key)
                    if not isinstance(value, (int, float)) or value <= 0:
                        problems.append(f"cases[{i}].{path}.{key} must be a positive number")
    return problems


def check_speedups(data: dict, requirements: dict[str, float]) -> list[str]:
    """Check per-campaign minimum speedups; returns human-readable failures.

    A requirement applies to every case of that campaign; unknown campaigns
    in ``requirements`` are reported as failures (a silently missing case
    would otherwise pass the gate).
    """
    failures: list[str] = []
    by_campaign: dict[str, list[dict]] = {}
    for case in data.get("cases", []):
        by_campaign.setdefault(case.get("campaign", ""), []).append(case)
    for campaign, minimum in requirements.items():
        cases = by_campaign.get(campaign)
        if not cases:
            failures.append(f"no benchmark case for campaign {campaign!r}")
            continue
        for case in cases:
            speedup = float(case.get("speedup", 0.0))
            if speedup < minimum:
                failures.append(
                    f"{case.get('name', campaign)}: speedup {speedup:.2f}x "
                    f"below required {minimum:.2f}x"
                )
    return failures


# --------------------------------------------------------------------------- #
# Command line
# --------------------------------------------------------------------------- #
def _parse_check(text: str) -> tuple[str, float]:
    campaign, sep, minimum = text.partition(":")
    if not sep or not campaign:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not CAMPAIGN:MIN_SPEEDUP (e.g. transformer_inference:3.0)"
        )
    try:
        return campaign, float(minimum)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{minimum!r} is not a number") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Measure trials/sec per kernel, scalar vs batched, and "
        "write a BENCH_<n>.json performance snapshot.",
    )
    parser.add_argument(
        "--out", default="BENCH_1.json", metavar="PATH", help="output JSON file"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=32,
        metavar="N",
        help="trial batch size of the batched path (default: 32)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timed repetitions per path; the best is kept (default: 3)",
    )
    parser.add_argument(
        "--executor", default="serial", help="execution backend to time (default: serial)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="run the tiny CI configuration"
    )
    parser.add_argument(
        "--campaign",
        action="append",
        default=[],
        metavar="NAME",
        help="only time cases of this campaign; repeatable",
    )
    parser.add_argument(
        "--check",
        action="append",
        default=[],
        type=_parse_check,
        metavar="CAMPAIGN:MIN",
        help="fail (exit 1) unless every case of CAMPAIGN reaches MIN "
        "speedup; repeatable",
    )
    parser.add_argument(
        "--validate",
        default=None,
        metavar="PATH",
        help="schema-check an existing BENCH_*.json and exit (no timing)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            data = json.loads(Path(args.validate).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.validate}: {exc}", file=sys.stderr)
            return 1
        problems = validate_bench_payload(data)
        for problem in problems:
            print(f"error: {args.validate}: {problem}", file=sys.stderr)
        if not problems:
            print(f"{args.validate}: valid BENCH schema v{BENCH_SCHEMA_VERSION}")
        return 1 if problems else 0

    cases = smoke_cases() if args.smoke else default_cases()
    if args.campaign:
        cases = [case for case in cases if case.campaign in args.campaign]
        if not cases:
            parser.error(f"no benchmark cases match --campaign {args.campaign}")
    out = Path(args.out)
    stem_digits = "".join(ch for ch in out.stem if ch.isdigit())
    payload = run_benchmark(
        cases,
        batch=args.batch,
        repeats=args.repeats,
        executor=args.executor,
        bench_id=int(stem_digits) if stem_digits else 1,
    )
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for case in payload["cases"]:
        print(
            f"{case['name']:45s} scalar {case['scalar']['trials_per_sec']:9.1f}/s  "
            f"batched {case['batched']['trials_per_sec']:9.1f}/s  "
            f"speedup {case['speedup']:.2f}x"
        )
    print(f"wrote {out}")

    failures = check_speedups(payload, dict(args.check))
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
