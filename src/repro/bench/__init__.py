"""Trials/sec benchmark harness tracking the engine's performance per PR."""

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchCase,
    default_cases,
    main,
    run_benchmark,
    smoke_cases,
    validate_bench_payload,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "default_cases",
    "main",
    "run_benchmark",
    "smoke_cases",
    "validate_bench_payload",
]
