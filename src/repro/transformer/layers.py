"""Protected Transformer layers: linear (strided ABFT), layer norm, activations, embedding.

The linear modules of the Transformer (QKV projections, attention output
projection, feed-forward matrices, LM head) are protected with the same
strided tensor-checksum ABFT as the attention GEMMs (Figure 1, item 3): the
weight matrix's output features are folded at the Tensor-Core stride, the
checksum columns ride along the GEMM, and the result is verified/corrected by
an intra-thread strided accumulation.
"""

from __future__ import annotations

import os

import numpy as np

from repro.fault.injector import FaultInjector
from repro.fault.models import FaultSite
from repro.fp.float16 import fp16_matmul
from repro.gemm.checksum import ChecksumVerdict, encode_strided_row_checksums, verify_strided_checksums


# Float32 constants for the opt-in fast GELU path.  In the default expression
# ``np.sqrt(2.0 / np.pi)`` is a strong float64 scalar that silently promotes
# the whole tanh chain (and the returned array) to float64 under NEP 50.
_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))
_GELU_CUBIC = np.float32(0.044715)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as used by GPT-2/BERT).

    The default evaluation is pinned bit-for-bit (it computes the tanh chain
    in float64 and is part of the campaign byte-parity surface).  Setting the
    environment variable ``REPRO_NUMERICS=fast`` opts into a float32-pure
    evaluation of the same approximation -- roughly half the memory traffic
    -- whose results differ from the default in the low bits.
    """
    mode = os.environ.get("REPRO_NUMERICS", "")
    x = np.asarray(x, dtype=np.float32)
    if mode in ("", "exact"):
        return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))
    if mode == "fast":
        inner = _SQRT_2_OVER_PI * (x + _GELU_CUBIC * (x * x * x))
        return np.float32(0.5) * x * (np.float32(1.0) + np.tanh(inner))
    raise ValueError(
        f"unknown REPRO_NUMERICS mode {mode!r}; expected '', 'exact' or 'fast'"
    )


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit (T5 feed-forward activation)."""
    return np.maximum(np.asarray(x, dtype=np.float32), 0.0)


class LayerNorm:
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5, rng: np.random.Generator | None = None):
        self.dim = dim
        self.eps = eps
        self.gamma = np.ones(dim, dtype=np.float32)
        self.beta = np.zeros(dim, dtype=np.float32)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return self.gamma * (x - mean) / np.sqrt(var + self.eps) + self.beta


class Embedding:
    """Token + learned positional embedding."""

    def __init__(self, vocab_size: int, dim: int, max_seq_len: int, rng: np.random.Generator):
        self.vocab_size = vocab_size
        self.dim = dim
        scale = 1.0 / np.sqrt(dim)
        self.token = (rng.standard_normal((vocab_size, dim)) * scale).astype(np.float32)
        self.position = (rng.standard_normal((max_seq_len, dim)) * scale).astype(np.float32)

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError("token_ids must have shape (batch, seq_len)")
        if token_ids.max() >= self.vocab_size or token_ids.min() < 0:
            raise ValueError("token id out of vocabulary range")
        seq_len = token_ids.shape[1]
        if seq_len > self.position.shape[0]:
            raise ValueError(f"sequence length {seq_len} exceeds maximum {self.position.shape[0]}")
        return self.token[token_ids] + self.position[None, :seq_len, :]


class ProtectedLinear:
    """Dense layer ``y = x W + b`` with strided-ABFT protection of the GEMM.

    The weight matrix's output features are folded at ``checksum_stride`` into
    two tensor checksums; multiplying the input by those checksums alongside
    the main GEMM produces output checksums, against which the output is
    verified and (for a single error per row and stride class) corrected.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        bias: bool = True,
        checksum_stride: int = 8,
        checksum_rtol: float = 0.05,
        checksum_atol: float = 1e-5,
    ):
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.checksum_stride = checksum_stride
        self.checksum_rtol = checksum_rtol
        self.checksum_atol = checksum_atol
        scale = 1.0 / np.sqrt(in_dim)
        self.weight = (rng.standard_normal((in_dim, out_dim)) * scale).astype(np.float32)
        self.bias = np.zeros(out_dim, dtype=np.float32) if bias else None
        # Weight checksums are encoded once (weights are static at inference).
        self._w_check1, self._w_check2 = encode_strided_row_checksums(self.weight, checksum_stride)
        self.last_verdict: ChecksumVerdict | None = None

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None = None,
        protected: bool = True,
    ) -> np.ndarray:
        """Apply the layer to ``x`` of shape ``(..., in_dim)``."""
        x = np.asarray(x, dtype=np.float32)
        lead = x.shape[:-1]
        x2 = x.reshape(-1, self.in_dim)
        y = fp16_matmul(x2, self.weight)
        if injector is not None:
            injector.corrupt(FaultSite.LINEAR, y)
        if protected:
            y_check1 = fp16_matmul(x2, self._w_check1)
            y_check2 = fp16_matmul(x2, self._w_check2)
            self.last_verdict = verify_strided_checksums(
                y,
                y_check1,
                y_check2,
                stride=self.checksum_stride,
                atol=self.checksum_atol,
                rtol=self.checksum_rtol,
            )
        else:
            self.last_verdict = None
        if self.bias is not None:
            y = y + self.bias
        return y.reshape(lead + (self.out_dim,))
