"""Model-level cost model for Figure 15 (EFTA overhead on full Transformers).

Figure 15 reports, for GPT2 / BERT-Base / BERT-Large / T5-Small at sequence
length 512, the per-inference-step execution time, the overhead of running the
optimized EFTA's error *detection* machinery, and the additional overhead of
error *correction* when one bit flip is injected per attention computation.

The model composes, per layer, the roofline costs of the QKV projections, the
fused protected attention, the output projection, the feed-forward GEMMs and
the normalisation, and adds the protection terms (strided ABFT on every linear
GEMM, EFTA's hybrid protection inside attention, activation range
restriction).  Per-token generation at batch 1 utilises an A100 poorly, so a
dedicated (lower) efficiency factor and per-kernel launch accounting are
applied; these are calibrated so the *unprotected* GPT2 step lands near the
paper's ~5.6 ms, while the reproduction targets remain the relative overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.costmodel import AttentionCostModel, AttentionWorkload
from repro.hardware.kernel import KernelCost, KernelLedger
from repro.hardware.specs import A100_PCIE_40GB, GPUSpec
from repro.transformer.configs import TransformerConfig

#: Sustained fraction of peak Tensor-Core throughput during batch-1,
#: short-sequence inference (small GEMMs, launch-bound pipeline).
SMALL_BATCH_EFFICIENCY = 0.06

#: Kernel launches per Transformer block during inference (QKV, attention,
#: output projection, two FFN GEMMs, two layer norms, residual adds, ...).
LAUNCHES_PER_BLOCK = 10


@dataclass
class ModelCostReport:
    """Simulated timings of one inference step for one model."""

    name: str
    base_time: float
    detection_time: float
    correction_time: float

    @property
    def detection_overhead(self) -> float:
        """Error-detection overhead as a fraction of the unprotected time."""
        return (self.detection_time - self.base_time) / self.base_time

    @property
    def correction_overhead(self) -> float:
        """Error-correction overhead (detection + repair) as a fraction of base."""
        return (self.correction_time - self.base_time) / self.base_time


class TransformerCostModel:
    """Roofline cost of protected Transformer inference (Figure 15)."""

    def __init__(
        self,
        config: TransformerConfig,
        seq_len: int = 512,
        batch: int = 1,
        spec: GPUSpec = A100_PCIE_40GB,
        attention_block_size: int = 128,
    ):
        self.config = config
        self.seq_len = seq_len
        self.batch = batch
        self.attention_block_size = attention_block_size
        # Derate the device for the batch-1 inference regime.
        self.spec = GPUSpec(
            name=spec.name,
            hbm_bytes=spec.hbm_bytes,
            hbm_bandwidth=spec.hbm_bandwidth,
            tensor_fp16_flops=spec.tensor_fp16_flops,
            cuda_fp32_flops=spec.cuda_fp32_flops,
            sfu_exp_ops=spec.sfu_exp_ops,
            kernel_launch_latency=spec.kernel_launch_latency,
            compute_efficiency=SMALL_BATCH_EFFICIENCY,
            bandwidth_efficiency=spec.bandwidth_efficiency,
        )

    # ------------------------------------------------------------------ #
    def _linear_cost(self, name: str, in_dim: int, out_dim: int) -> KernelCost:
        """Roofline cost of one dense GEMM of the block (tokens x in -> out)."""
        tokens = self.batch * self.seq_len
        bytes_per = 2
        return KernelCost(
            name=name,
            tensor_flops=2.0 * tokens * in_dim * out_dim,
            bytes_read=(tokens * in_dim + in_dim * out_dim) * bytes_per,
            bytes_written=tokens * out_dim * bytes_per,
            launches=1,
        )

    def _linear_protection_cost(self, name: str, in_dim: int, out_dim: int, stride: int = 8) -> KernelCost:
        """Strided-ABFT cost of one dense GEMM: checksum GEMM + verification."""
        tokens = self.batch * self.seq_len
        checksum_gemm = 0.5 * 2.0 * 2.0 * tokens * in_dim * stride
        verify_cuda = 1.0 * tokens * out_dim
        return KernelCost(name=name, tensor_flops=checksum_gemm, cuda_flops=verify_cuda, launches=0)

    def _attention_workload(self) -> AttentionWorkload:
        return AttentionWorkload(
            batch=self.batch,
            heads=self.config.num_heads,
            seq_len=self.seq_len,
            head_dim=self.config.head_dim,
            block_size=self.attention_block_size,
        )

    # ------------------------------------------------------------------ #
    def base_ledger(self) -> KernelLedger:
        """Unprotected inference-step cost: all blocks plus normalisation work."""
        cfg = self.config
        ledger = KernelLedger(self.spec)
        attention_model = AttentionCostModel(self._attention_workload(), self.spec)
        tokens = self.batch * self.seq_len
        for _ in range(cfg.num_layers):
            ledger.add(self._linear_cost("qkv_proj", cfg.hidden_dim, 3 * cfg.hidden_dim))
            ledger.add(attention_model.flash_attention_cost())
            ledger.add(self._linear_cost("out_proj", cfg.hidden_dim, cfg.hidden_dim))
            ledger.add(self._linear_cost("ffn_in", cfg.hidden_dim, cfg.ffn_dim))
            ledger.add(self._linear_cost("ffn_out", cfg.ffn_dim, cfg.hidden_dim))
            ledger.add(
                KernelCost(
                    name="norms_residuals",
                    cuda_flops=10.0 * tokens * cfg.hidden_dim,
                    bytes_read=4.0 * tokens * cfg.hidden_dim * 2,
                    bytes_written=2.0 * tokens * cfg.hidden_dim * 2,
                    launches=LAUNCHES_PER_BLOCK - 6,
                )
            )
        return ledger

    def protection_costs(self) -> list[KernelCost]:
        """Per-step protection work: EFTA inside attention + ABFT on every linear."""
        cfg = self.config
        attention_model = AttentionCostModel(self._attention_workload(), self.spec)
        efta = attention_model.efta_breakdown(unified_verification=True)
        costs: list[KernelCost] = []
        tokens = self.batch * self.seq_len
        for _ in range(cfg.num_layers):
            costs.extend(efta.protection.values())
            costs.append(self._linear_protection_cost("qkv_abft", cfg.hidden_dim, 3 * cfg.hidden_dim))
            costs.append(self._linear_protection_cost("out_abft", cfg.hidden_dim, cfg.hidden_dim))
            costs.append(self._linear_protection_cost("ffn_in_abft", cfg.hidden_dim, cfg.ffn_dim))
            costs.append(self._linear_protection_cost("ffn_out_abft", cfg.ffn_dim, cfg.hidden_dim))
            costs.append(
                KernelCost(name="activation_restriction", cuda_flops=2.0 * tokens * cfg.ffn_dim, launches=0)
            )
        return costs

    def correction_costs(self, faults_per_attention: int = 1) -> list[KernelCost]:
        """Extra work to *correct* injected faults (one per attention by default).

        Correcting a fault re-runs the verification of the affected block,
        recomputes the corrupted stride class (or re-executes the block's
        exponentiation) and re-synchronises the pipeline; this is charged as
        one extra block iteration of the fused kernel per fault.
        """
        w = self._attention_workload()
        block_iterations = max(1, w.n_blocks)
        attention_model = AttentionCostModel(w, self.spec)
        per_attention = attention_model.flash_attention_cost().scaled(1.0 / block_iterations)
        costs = []
        for _ in range(self.config.num_layers):
            for _ in range(faults_per_attention):
                costs.append(
                    KernelCost(
                        name="fault_correction",
                        tensor_flops=per_attention.tensor_flops,
                        cuda_flops=2.0 * per_attention.cuda_flops,
                        exp_ops=per_attention.exp_ops,
                        launches=0,
                    )
                )
        return costs

    # ------------------------------------------------------------------ #
    def report(self, faults_per_attention: int = 1) -> ModelCostReport:
        """Simulated base / detection / correction times for this model."""
        base = self.base_ledger().total_time()
        detection = base + sum(c.time_seconds(self.spec) for c in self.protection_costs())
        correction = detection + sum(
            c.time_seconds(self.spec) for c in self.correction_costs(faults_per_attention)
        )
        return ModelCostReport(
            name=self.config.name,
            base_time=base,
            detection_time=detection,
            correction_time=correction,
        )
