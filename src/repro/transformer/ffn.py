"""Feed-forward block with strided ABFT and activation range restriction (Figure 1).

The paper protects the feed-forward module with two mechanisms: both linear
projections carry strided-ABFT checksums, and the nonlinear activation in
between is range-restricted (a neuron value falling outside the theoretical
output range of the activation is clamped back, the standard lightweight
protection for element-wise nonlinearities).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.config import FaultToleranceReport
from repro.fault.injector import FaultInjector
from repro.transformer.layers import ProtectedLinear, gelu


class FeedForward:
    """Two-layer MLP: ``Linear -> activation (range restricted) -> Linear``."""

    def __init__(
        self,
        hidden_dim: int,
        ffn_dim: int,
        rng: np.random.Generator,
        activation: Callable[[np.ndarray], np.ndarray] = gelu,
        activation_bound: float = 50.0,
        checksum_stride: int = 8,
    ):
        self.fc_in = ProtectedLinear(hidden_dim, ffn_dim, rng, checksum_stride=checksum_stride)
        self.fc_out = ProtectedLinear(ffn_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.activation = activation
        #: Theoretical bound on the post-activation magnitude; GELU/ReLU never
        #: produce values more negative than ~-0.17, and the positive side is
        #: bounded by the (restricted) pre-activation range.
        self.activation_bound = activation_bound

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None = None,
        report: FaultToleranceReport | None = None,
        protected: bool = True,
    ) -> np.ndarray:
        """Apply the block to ``x`` of shape ``(..., hidden_dim)``."""
        hidden = self.fc_in(x, injector=injector, protected=protected)
        self._record(self.fc_in, report, "ffn_in")
        activated = self.activation(hidden)
        if protected:
            clipped = np.clip(activated, -self.activation_bound, self.activation_bound)
            restricted = int(np.count_nonzero(clipped != activated))
            if restricted and report is not None:
                report.record_detection("ffn_activation", restricted)
                report.record_restoration("ffn_activation", restricted)
            activated = clipped
        out = self.fc_out(activated, injector=injector, protected=protected)
        self._record(self.fc_out, report, "ffn_out")
        return out

    @staticmethod
    def _record(layer: ProtectedLinear, report: FaultToleranceReport | None, stage: str) -> None:
        if report is None or layer.last_verdict is None:
            return
        report.record_detection(stage, layer.last_verdict.detected)
        report.record_correction(stage, layer.last_verdict.corrected)
        report.record_uncorrectable(stage, layer.last_verdict.uncorrectable)
