"""Multi-head attention running on a named protection scheme.

The attention kernel is selected from the pluggable scheme registry
(:mod:`repro.core.schemes`) by name -- ``"none"``, ``"efta"``,
``"efta_unified"`` or ``"decoupled"`` -- so every scheme comparison in the
repo flows through this one code path.  The QKV and output projections are
strided-ABFT :class:`~repro.transformer.layers.ProtectedLinear` layers; they
verify their GEMMs whenever the scheme protects linear layers.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.attention.flash import flash_attention
from repro.attention.tiling import merge_heads, split_heads
from repro.core.config import AttentionConfig, FaultToleranceReport
from repro.core.schemes import build_scheme
from repro.fault.injector import FaultInjector
from repro.transformer.layers import ProtectedLinear

DEFAULT_SCHEME = "efta_unified"


def resolve_scheme_name(scheme: str | bool | None, unified_verification: bool | None) -> str:
    """Map the current ``scheme`` name (or the deprecated flags) to a registry name.

    Accepts the two legacy spellings with a :class:`DeprecationWarning`: the
    ``unified_verification=`` keyword, and a bare bool passed where ``scheme``
    now sits (the flag's old positional slot).
    """
    if unified_verification is not None:
        warnings.warn(
            "unified_verification= is deprecated; pass scheme='efta_unified' "
            "or scheme='efta' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        mapped = "efta_unified" if unified_verification else "efta"
        if isinstance(scheme, str) and scheme not in (DEFAULT_SCHEME, mapped):
            raise ValueError(
                f"conflicting scheme selection: scheme={scheme!r} vs deprecated "
                f"unified_verification={unified_verification!r} (-> {mapped!r})"
            )
        return mapped
    if isinstance(scheme, bool):
        warnings.warn(
            "passing a bool where scheme: str is expected is deprecated; pass "
            "scheme='efta_unified' or scheme='efta' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return "efta_unified" if scheme else "efta"
    return DEFAULT_SCHEME if scheme is None else scheme


class MultiHeadAttention:
    """QKV projection + scheme-selected attention + output projection.

    Parameters
    ----------
    hidden_dim, num_heads:
        Model shape; the head dimension is ``hidden_dim / num_heads``.
    seq_len:
        Maximum sequence length (sizes the attention configuration).
    attention_block_size:
        Block size of the fused attention kernel.
    scheme:
        Name of a registered protection scheme (``"none"``, ``"efta"``,
        ``"efta_unified"``, ``"decoupled"``).
    unified_verification:
        Deprecated: ``True`` maps to ``scheme="efta_unified"``, ``False`` to
        ``scheme="efta"``.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        seq_len: int,
        rng: np.random.Generator,
        attention_block_size: int = 128,
        scheme: str = DEFAULT_SCHEME,
        checksum_stride: int = 8,
        unified_verification: bool | None = None,
    ):
        if hidden_dim % num_heads:
            raise ValueError("hidden_dim must be divisible by num_heads")
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.q_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.k_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.v_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.out_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        config = AttentionConfig(
            seq_len=seq_len,
            head_dim=self.head_dim,
            block_size=attention_block_size,
            checksum_stride=checksum_stride,
        )
        self.scheme_name = resolve_scheme_name(scheme, unified_verification)
        self.attention = build_scheme(self.scheme_name, config)

    @property
    def protects_linear(self) -> bool:
        """Whether the configured scheme verifies the projection GEMMs."""
        return self.attention.protects_linear

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None = None,
        report: FaultToleranceReport | None = None,
        protected: bool | None = None,
    ) -> np.ndarray:
        """Apply self-attention to ``x`` of shape ``(batch, seq_len, hidden_dim)``.

        ``protected`` is deprecated: ``protected=False`` forces the
        unprotected path regardless of the configured scheme (construct with
        ``scheme="none"`` instead); ``protected=True`` forces the scheme path.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 3:
            raise ValueError("expected input of shape (batch, seq_len, hidden_dim)")
        if protected is not None:
            warnings.warn(
                "protected= is deprecated; select the unprotected path by "
                "constructing with scheme='none'",
                DeprecationWarning,
                stacklevel=2,
            )
        protect_linear = self.protects_linear if protected is None else protected
        q = self.q_proj(x, injector=injector, protected=protect_linear)
        k = self.k_proj(x, injector=injector, protected=protect_linear)
        v = self.v_proj(x, injector=injector, protected=protect_linear)
        for proj, stage in ((self.q_proj, "q_proj"), (self.k_proj, "k_proj"), (self.v_proj, "v_proj")):
            self._record(proj, report, stage)

        qh = split_heads(q, self.num_heads)
        kh = split_heads(k, self.num_heads)
        vh = split_heads(v, self.num_heads)
        if protected is False:
            out_heads = flash_attention(
                qh, kh, vh, block_size=self.attention.config.block_size, mixed_precision=True
            )
        else:
            out_heads, attn_report = self.attention.forward(qh, kh, vh, injector=injector)
            if report is not None:
                report.merge(attn_report)
        out = merge_heads(out_heads)
        projected = self.out_proj(out, injector=injector, protected=protect_linear)
        self._record(self.out_proj, report, "out_proj")
        return projected

    @staticmethod
    def _record(layer: ProtectedLinear, report: FaultToleranceReport | None, stage: str) -> None:
        if report is None or layer.last_verdict is None:
            return
        report.record_detection(stage, layer.last_verdict.detected)
        report.record_correction(stage, layer.last_verdict.corrected)
        report.record_uncorrectable(stage, layer.last_verdict.uncorrectable)
