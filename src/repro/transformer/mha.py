"""Multi-head attention module running on end-to-end fault tolerant attention."""

from __future__ import annotations

import numpy as np

from repro.attention.tiling import merge_heads, split_heads
from repro.core.config import AttentionConfig, FaultToleranceReport
from repro.core.efta import EFTAttention
from repro.core.efta_optimized import EFTAttentionOptimized
from repro.fault.injector import FaultInjector
from repro.transformer.layers import ProtectedLinear


class MultiHeadAttention:
    """QKV projection + EFTA + output projection, all under ABFT protection.

    Parameters
    ----------
    hidden_dim, num_heads:
        Model shape; the head dimension is ``hidden_dim / num_heads``.
    seq_len:
        Maximum sequence length (sizes the attention configuration).
    attention_block_size:
        Block size of the fused attention kernel.
    unified_verification:
        Use the optimized EFTA (single verification per output block).
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        seq_len: int,
        rng: np.random.Generator,
        attention_block_size: int = 128,
        unified_verification: bool = True,
        checksum_stride: int = 8,
    ):
        if hidden_dim % num_heads:
            raise ValueError("hidden_dim must be divisible by num_heads")
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads
        self.q_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.k_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.v_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        self.out_proj = ProtectedLinear(hidden_dim, hidden_dim, rng, checksum_stride=checksum_stride)
        config = AttentionConfig(
            seq_len=seq_len,
            head_dim=self.head_dim,
            block_size=attention_block_size,
            checksum_stride=checksum_stride,
        )
        attention_cls = EFTAttentionOptimized if unified_verification else EFTAttention
        self.attention = attention_cls(config)

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None = None,
        report: FaultToleranceReport | None = None,
        protected: bool = True,
    ) -> np.ndarray:
        """Apply self-attention to ``x`` of shape ``(batch, seq_len, hidden_dim)``."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 3:
            raise ValueError("expected input of shape (batch, seq_len, hidden_dim)")
        q = self.q_proj(x, injector=injector, protected=protected)
        k = self.k_proj(x, injector=injector, protected=protected)
        v = self.v_proj(x, injector=injector, protected=protected)
        for proj, stage in ((self.q_proj, "q_proj"), (self.k_proj, "k_proj"), (self.v_proj, "v_proj")):
            self._record(proj, report, stage)

        qh = split_heads(q, self.num_heads)
        kh = split_heads(k, self.num_heads)
        vh = split_heads(v, self.num_heads)
        if protected:
            out_heads, attn_report = self.attention(qh, kh, vh, injector=injector)
            if report is not None:
                report.merge(attn_report)
        else:
            from repro.attention.flash import flash_attention

            out_heads = flash_attention(
                qh, kh, vh, block_size=self.attention.config.block_size, mixed_precision=True
            )
        out = merge_heads(out_heads)
        projected = self.out_proj(out, injector=injector, protected=protected)
        self._record(self.out_proj, report, "out_proj")
        return projected

    @staticmethod
    def _record(layer: ProtectedLinear, report: FaultToleranceReport | None, stage: str) -> None:
        if report is None or layer.last_verdict is None:
            return
        report.record_detection(stage, layer.last_verdict.detected)
        report.record_correction(stage, layer.last_verdict.corrected)
        report.record_uncorrectable(stage, layer.last_verdict.uncorrectable)
