"""Full Transformer inference model built on the protected layers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FaultToleranceReport
from repro.fault.injector import FaultInjector
from repro.transformer.configs import TransformerConfig
from repro.transformer.ffn import FeedForward
from repro.transformer.layers import Embedding, LayerNorm, ProtectedLinear, gelu, relu
from repro.transformer.mha import MultiHeadAttention


@dataclass
class TransformerOutput:
    """Result of one protected forward pass."""

    hidden_states: np.ndarray
    logits: np.ndarray | None
    report: FaultToleranceReport


class TransformerBlock:
    """One pre-norm Transformer block: MHA + FFN with residual connections."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        attention_block_size: int,
        unified_verification: bool,
    ):
        self.ln_attn = LayerNorm(config.hidden_dim)
        self.ln_ffn = LayerNorm(config.hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim=config.hidden_dim,
            num_heads=config.num_heads,
            seq_len=config.max_seq_len,
            rng=rng,
            attention_block_size=attention_block_size,
            unified_verification=unified_verification,
        )
        activation = relu if config.name.startswith("T5") else gelu
        self.ffn = FeedForward(config.hidden_dim, config.ffn_dim, rng, activation=activation)

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None,
        report: FaultToleranceReport | None,
        protected: bool,
    ) -> np.ndarray:
        x = x + self.attention(self.ln_attn(x), injector=injector, report=report, protected=protected)
        x = x + self.ffn(self.ln_ffn(x), injector=injector, report=report, protected=protected)
        return x


class TransformerModel:
    """Randomly initialised Transformer with end-to-end fault tolerant inference.

    Parameters
    ----------
    config:
        Architecture description (use the presets in
        :mod:`repro.transformer.configs` or a scaled-down copy for tests).
    seed:
        Seed of the weight initialisation.
    attention_block_size:
        Block size of the fused attention kernel; keep it at or below the
        sequence lengths you intend to run.
    unified_verification:
        Whether attention uses the optimized EFTA.
    with_lm_head:
        Attach a vocabulary projection producing logits.
    """

    def __init__(
        self,
        config: TransformerConfig,
        seed: int = 0,
        attention_block_size: int = 128,
        unified_verification: bool = True,
        with_lm_head: bool = True,
    ):
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(config.vocab_size, config.hidden_dim, config.max_seq_len, rng)
        self.blocks = [
            TransformerBlock(config, rng, attention_block_size, unified_verification)
            for _ in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.hidden_dim)
        self.lm_head = (
            ProtectedLinear(config.hidden_dim, config.vocab_size, rng, bias=False)
            if with_lm_head
            else None
        )

    # ------------------------------------------------------------------ #
    def forward(
        self,
        token_ids: np.ndarray,
        injector: FaultInjector | None = None,
        protected: bool = True,
    ) -> TransformerOutput:
        """Run a full forward pass over ``token_ids`` of shape (batch, seq_len)."""
        report = FaultToleranceReport()
        already_applied = injector.applied_count if injector is not None else 0
        x = self.embedding(np.asarray(token_ids))
        for block in self.blocks:
            x = block(x, injector, report, protected)
        x = self.final_norm(x)
        logits = None
        if self.lm_head is not None:
            logits = self.lm_head(x, injector=injector, protected=protected)
        if injector is not None:
            # Attention sub-kernels already copied their own records into the
            # merged report; add only the ones no sub-report captured.
            seen = {id(r) for r in report.injected}
            report.injected.extend(
                r for r in injector.records[already_applied:] if id(r) not in seen
            )
        return TransformerOutput(hidden_states=x, logits=logits, report=report)

    __call__ = forward

    # ------------------------------------------------------------------ #
    def generate_token(
        self,
        token_ids: np.ndarray,
        injector: FaultInjector | None = None,
        protected: bool = True,
    ) -> tuple[np.ndarray, TransformerOutput]:
        """One greedy decoding step: returns the argmax next token per batch row."""
        if self.lm_head is None:
            raise RuntimeError("generate_token requires the model to have an LM head")
        output = self.forward(token_ids, injector=injector, protected=protected)
        next_token = np.argmax(output.logits[:, -1, :], axis=-1)
        return next_token, output

    def num_parameters(self) -> int:
        """Total number of weight parameters (embeddings + blocks + head)."""
        cfg = self.config
        per_block = 4 * cfg.hidden_dim * cfg.hidden_dim + 2 * cfg.hidden_dim * cfg.ffn_dim
        total = cfg.vocab_size * cfg.hidden_dim + cfg.max_seq_len * cfg.hidden_dim
        total += cfg.num_layers * per_block
        if self.lm_head is not None:
            total += cfg.hidden_dim * cfg.vocab_size
        return total
