"""Full Transformer inference model built on the scheme-agnostic protected layers.

The protection scheme is selected by registry name (``"none"``, ``"efta"``,
``"efta_unified"``, ``"decoupled"``) either on the
:class:`~repro.transformer.configs.TransformerConfig` or per model instance,
so the same model runs end-to-end under every registered scheme -- the code
path behind the paper's cross-scheme comparisons and the
``transformer_inference`` fault campaigns.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.config import FaultToleranceReport
from repro.core.schemes import get_scheme
from repro.fault.injector import FaultInjector
from repro.transformer.configs import TransformerConfig
from repro.transformer.ffn import FeedForward
from repro.transformer.layers import Embedding, LayerNorm, ProtectedLinear, gelu, relu
from repro.transformer.mha import MultiHeadAttention, resolve_scheme_name


@dataclass
class TransformerOutput:
    """Result of one protected forward pass."""

    hidden_states: np.ndarray
    logits: np.ndarray | None
    report: FaultToleranceReport


class TransformerBlock:
    """One pre-norm Transformer block: MHA + FFN with residual connections."""

    def __init__(
        self,
        config: TransformerConfig,
        rng: np.random.Generator,
        attention_block_size: int,
        scheme: str | bool | None = None,
    ):
        scheme = resolve_scheme_name(
            config.scheme if scheme is None else scheme, unified_verification=None
        )
        self.ln_attn = LayerNorm(config.hidden_dim)
        self.ln_ffn = LayerNorm(config.hidden_dim)
        self.attention = MultiHeadAttention(
            hidden_dim=config.hidden_dim,
            num_heads=config.num_heads,
            seq_len=config.max_seq_len,
            rng=rng,
            attention_block_size=attention_block_size,
            scheme=scheme,
        )
        activation = relu if config.name.startswith("T5") else gelu
        self.ffn = FeedForward(config.hidden_dim, config.ffn_dim, rng, activation=activation)

    @property
    def scheme_name(self) -> str:
        """The protection scheme this block runs under."""
        return self.attention.scheme_name

    def __call__(
        self,
        x: np.ndarray,
        injector: FaultInjector | None,
        report: FaultToleranceReport | None,
        protected: bool | None = None,
    ) -> np.ndarray:
        ffn_protected = self.attention.protects_linear if protected is None else protected
        x = x + self.attention(self.ln_attn(x), injector=injector, report=report, protected=protected)
        x = x + self.ffn(self.ln_ffn(x), injector=injector, report=report, protected=ffn_protected)
        return x


class TransformerModel:
    """Randomly initialised Transformer with scheme-selected fault tolerant inference.

    Parameters
    ----------
    config:
        Architecture description (use the presets in
        :mod:`repro.transformer.configs` or a scaled-down copy for tests).
    seed:
        Seed of the weight initialisation.
    attention_block_size:
        Block size of the fused attention kernel; keep it at or below the
        sequence lengths you intend to run.
    scheme:
        Name of a registered protection scheme; defaults to
        ``config.scheme``.  ``"none"`` runs the whole stack unprotected.
    with_lm_head:
        Attach a vocabulary projection producing logits.
    unified_verification:
        Deprecated: ``True`` maps to ``scheme="efta_unified"``, ``False`` to
        ``scheme="efta"``.
    """

    def __init__(
        self,
        config: TransformerConfig,
        seed: int = 0,
        attention_block_size: int = 128,
        scheme: str | bool | None = None,
        with_lm_head: bool = True,
        unified_verification: bool | None = None,
    ):
        self.config = config
        if scheme is None and unified_verification is None:
            self.scheme_name = resolve_scheme_name(config.scheme, None)
        else:
            self.scheme_name = resolve_scheme_name(scheme, unified_verification)
        self.scheme_cls = get_scheme(self.scheme_name)  # fail fast on typos
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(config.vocab_size, config.hidden_dim, config.max_seq_len, rng)
        self.blocks = [
            TransformerBlock(config, rng, attention_block_size, self.scheme_name)
            for _ in range(config.num_layers)
        ]
        self.final_norm = LayerNorm(config.hidden_dim)
        self.lm_head = (
            ProtectedLinear(config.hidden_dim, config.vocab_size, rng, bias=False)
            if with_lm_head
            else None
        )

    # ------------------------------------------------------------------ #
    @property
    def protects_linear(self) -> bool:
        """Whether the configured scheme verifies the model's linear GEMMs."""
        return self.scheme_cls.protects_linear

    def forward(
        self,
        token_ids: np.ndarray,
        injector: FaultInjector | None = None,
        protected: bool | None = None,
    ) -> TransformerOutput:
        """Run a full forward pass over ``token_ids`` of shape (batch, seq_len).

        ``protected`` is deprecated: pass ``scheme="none"`` at construction to
        run unprotected instead of ``protected=False`` here.
        """
        if protected is not None:
            warnings.warn(
                "protected= is deprecated; construct the model with "
                "scheme='none' to run unprotected",
                DeprecationWarning,
                stacklevel=2,
            )
        report = FaultToleranceReport()
        already_applied = injector.applied_count if injector is not None else 0
        x = self.embedding(np.asarray(token_ids))
        with warnings.catch_warnings():
            if protected is not None:
                # Warned once above, attributed to the caller; the per-layer
                # re-warnings from MultiHeadAttention would point at repro's
                # own frames.
                warnings.simplefilter("ignore", DeprecationWarning)
            for block in self.blocks:
                x = block(x, injector, report, protected)
        x = self.final_norm(x)
        logits = None
        if self.lm_head is not None:
            head_protected = self.protects_linear if protected is None else protected
            logits = self.lm_head(x, injector=injector, protected=head_protected)
        if injector is not None:
            # Attention sub-kernels already copied their own records into the
            # merged report; add only the ones no sub-report captured.
            seen = {id(r) for r in report.injected}
            report.injected.extend(
                r for r in injector.records[already_applied:] if id(r) not in seen
            )
        return TransformerOutput(hidden_states=x, logits=logits, report=report)

    __call__ = forward

    # ------------------------------------------------------------------ #
    def generate_token(
        self,
        token_ids: np.ndarray,
        injector: FaultInjector | None = None,
        protected: bool | None = None,
    ) -> tuple[np.ndarray, TransformerOutput]:
        """One greedy decoding step: returns the argmax next token per batch row."""
        if self.lm_head is None:
            raise RuntimeError("generate_token requires the model to have an LM head")
        output = self.forward(token_ids, injector=injector, protected=protected)
        next_token = np.argmax(output.logits[:, -1, :], axis=-1)
        return next_token, output

    def num_parameters(self) -> int:
        """Total number of weight parameters (embeddings + blocks + head)."""
        cfg = self.config
        per_block = 4 * cfg.hidden_dim * cfg.hidden_dim + 2 * cfg.hidden_dim * cfg.ffn_dim
        total = cfg.vocab_size * cfg.hidden_dim + cfg.max_seq_len * cfg.hidden_dim
        total += cfg.num_layers * per_block
        if self.lm_head is not None:
            total += cfg.hidden_dim * cfg.vocab_size
        return total
