"""Transformer inference substrate built on the protected kernels.

The paper's Figure 15 evaluates the optimized EFTA inside full Transformer
models (GPT2, BERT-Base, BERT-Large, T5-Small).  This package provides that
substrate: embeddings, multi-head attention running on EFTA, feed-forward
blocks protected by strided ABFT plus activation range restriction, layer
normalisation, and the published architecture configurations.  Weights are
randomly initialised -- protection overhead depends only on the architecture
shape, not on trained parameter values.
"""

from repro.transformer.configs import (
    BERT_BASE,
    BERT_LARGE,
    GPT2_SMALL,
    T5_SMALL,
    TransformerConfig,
    get_config,
    model_zoo,
)
from repro.transformer.layers import Embedding, LayerNorm, ProtectedLinear, gelu, relu
from repro.transformer.ffn import FeedForward
from repro.transformer.mha import MultiHeadAttention
from repro.transformer.model import TransformerBlock, TransformerModel, TransformerOutput
from repro.transformer.costing import TransformerCostModel

__all__ = [
    "BERT_BASE",
    "BERT_LARGE",
    "GPT2_SMALL",
    "T5_SMALL",
    "TransformerConfig",
    "get_config",
    "model_zoo",
    "Embedding",
    "LayerNorm",
    "ProtectedLinear",
    "gelu",
    "relu",
    "FeedForward",
    "MultiHeadAttention",
    "TransformerBlock",
    "TransformerModel",
    "TransformerOutput",
    "TransformerCostModel",
]
