"""Transformer architecture configurations used by the Figure-15 experiments."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture shape of a Transformer model.

    Only quantities that influence compute / protection overhead are kept;
    tokenisation details are irrelevant to the reproduction.

    Attributes
    ----------
    name:
        Human-readable model name (matches the paper's Figure 15 labels).
    hidden_dim:
        Model (embedding) dimension.
    num_heads:
        Attention heads per layer; the head dimension is ``hidden_dim /
        num_heads``.
    num_layers:
        Number of Transformer blocks (encoder + decoder for T5).
    ffn_dim:
        Inner dimension of the feed-forward block.
    vocab_size:
        Vocabulary size (affects only the embedding / LM-head GEMMs).
    max_seq_len:
        Maximum sequence length the model is evaluated at (512 in Figure 15).
    is_decoder:
        Whether the model generates autoregressively (per-token timing) or
        encodes the whole sequence at once.
    scheme:
        Name of the protection scheme the model runs under (a
        :mod:`repro.core.schemes` registry name: ``"none"``, ``"efta"``,
        ``"efta_unified"``, ``"decoupled"``).  ``TransformerModel(...,
        scheme=...)`` overrides it per instance.
    """

    name: str
    hidden_dim: int
    num_heads: int
    num_layers: int
    ffn_dim: int
    vocab_size: int = 32000
    max_seq_len: int = 512
    is_decoder: bool = False
    scheme: str = "efta_unified"

    def __post_init__(self) -> None:
        if self.hidden_dim % self.num_heads:
            raise ValueError(
                f"hidden_dim {self.hidden_dim} must be divisible by num_heads {self.num_heads}"
            )
        if min(self.hidden_dim, self.num_heads, self.num_layers, self.ffn_dim) <= 0:
            raise ValueError("all architecture dimensions must be positive")

    @property
    def head_dim(self) -> int:
        """Per-head feature dimension."""
        return self.hidden_dim // self.num_heads

    def scaled(self, hidden_dim: int, num_layers: int | None = None) -> "TransformerConfig":
        """A shrunken copy for functional tests (same shape family, tiny sizes)."""
        heads = max(1, self.num_heads * hidden_dim // self.hidden_dim)
        while hidden_dim % heads:
            heads -= 1
        return TransformerConfig(
            name=f"{self.name}-tiny",
            hidden_dim=hidden_dim,
            num_heads=heads,
            num_layers=num_layers if num_layers is not None else min(2, self.num_layers),
            ffn_dim=hidden_dim * 4,
            vocab_size=997,
            max_seq_len=self.max_seq_len,
            is_decoder=self.is_decoder,
            scheme=self.scheme,
        )

    def with_scheme(self, scheme: str) -> "TransformerConfig":
        """A copy of this configuration running under a different protection scheme."""
        return replace(self, scheme=scheme)


#: GPT-2 (small): 12 layers, 768 hidden, 12 heads, autoregressive decoder.
GPT2_SMALL = TransformerConfig(
    name="GPT2", hidden_dim=768, num_heads=12, num_layers=12, ffn_dim=3072,
    vocab_size=50257, is_decoder=True,
)

#: BERT-Base: 12 layers, 768 hidden, 12 heads, encoder.
BERT_BASE = TransformerConfig(
    name="BERT-Base", hidden_dim=768, num_heads=12, num_layers=12, ffn_dim=3072,
    vocab_size=30522,
)

#: BERT-Large: 24 layers, 1024 hidden, 16 heads, encoder.
BERT_LARGE = TransformerConfig(
    name="BERT-Large", hidden_dim=1024, num_heads=16, num_layers=24, ffn_dim=4096,
    vocab_size=30522,
)

#: T5-Small: 6 encoder + 6 decoder layers, 512 hidden, 8 heads.
T5_SMALL = TransformerConfig(
    name="T5-Small", hidden_dim=512, num_heads=8, num_layers=12, ffn_dim=2048,
    vocab_size=32128, is_decoder=True,
)


def model_zoo() -> list[TransformerConfig]:
    """The four models evaluated in Figure 15, in the paper's order."""
    return [GPT2_SMALL, BERT_BASE, BERT_LARGE, T5_SMALL]


def get_config(name: str) -> TransformerConfig:
    """Look up a Figure-15 model configuration by its published name."""
    for config in model_zoo():
        if config.name == name:
            return config
    known = [c.name for c in model_zoo()]
    raise ValueError(f"unknown model configuration {name!r}; known: {known}")
