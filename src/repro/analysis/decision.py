"""Decision support: Pareto-optimal protection schemes of a finished sweep.

The paper's central trade-off is statistical protection (detection rate,
coverage) against roofline overhead (the ``attention_cost`` /
``transformer_cost`` models).  A sweep measures the first with Monte-Carlo
confidence intervals; this module joins those intervals with the
deterministic cost models and reports which schemes are *Pareto-optimal* --
no other scheme is at least as good on both axes and strictly better on one
-- plus, for each dominated scheme, who dominates it.  ``python -m repro
pareto`` renders the result as a table.

The join is by scheme: every grid point sharing a ``scheme`` value pools its
trial counts (success/total pairs, so the interval tightens with the pooled
sample), and the scheme's overhead comes from one deterministic cost-model
trial evaluated at the sweep's shared parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.fault.metrics import binomial_interval

#: Rate metrics where larger is better; ``false_alarm_rate`` is minimised.
_HIGHER_BETTER = ("detection_rate", "coverage")


@dataclass(frozen=True)
class SchemeSummary:
    """One scheme's pooled statistics, overhead and dominance annotation.

    Attributes
    ----------
    scheme:
        The scheme-axis value the grid points were pooled by.
    n_points:
        Grid points pooled into this row.
    successes / n:
        Pooled success/denominator counts of the metric (``n`` can be 0:
        e.g. ``false_alarm_rate`` with no clean trials -- the rate is then
        unmeasured, not 0%).
    rate / interval:
        Point estimate and confidence interval of the pooled metric, or
        ``None`` when unmeasured.
    overhead:
        Roofline overhead of the scheme from the cost model (lower is
        better), or ``None`` when the cost model does not know the scheme.
    dominated_by:
        Schemes that are at least as good on both axes and strictly better
        on one.  Empty for Pareto-optimal (and for unmeasured) schemes.
    """

    scheme: str
    n_points: int
    successes: int
    n: int
    rate: float | None
    interval: tuple[float, float] | None
    overhead: float | None
    dominated_by: tuple[str, ...] = ()

    @property
    def comparable(self) -> bool:
        """Whether the scheme has both axes measured (can enter dominance)."""
        return self.rate is not None and self.overhead is not None

    @property
    def pareto(self) -> bool:
        """Whether the scheme is on the Pareto frontier."""
        return self.comparable and not self.dominated_by


def scheme_overhead(
    scheme: Any, cost: str = "attention_cost", cost_params: dict | None = None
) -> float | None:
    """Roofline overhead of one scheme from a deterministic cost kernel.

    Runs a single trial of the registered ``cost`` campaign with the scheme
    plugged into ``cost_params`` and reads its overhead: the ``"overhead"``
    record field when present (``attention_cost``), else the sum of
    ``"*_overhead"`` fields (``transformer_cost``).  Returns ``None`` when
    the cost model rejects the scheme (e.g. a baseline outside its registry)
    -- the scheme then reports without an overhead instead of failing the
    whole table.
    """
    from repro.exec.engine import run_experiment

    params = {**(cost_params or {}), "scheme": scheme}
    try:
        record = run_experiment(
            {"campaign": cost, "n_trials": 1, "params": params}
        ).result.summary()
    except (KeyError, ValueError):
        return None
    if "overhead" in record:
        return float(record["overhead"])
    parts = [
        float(value)
        for key, value in sorted(record.items())
        if key.endswith("_overhead")
    ]
    if not parts:
        raise ValueError(
            f"cost campaign {cost!r} record has no 'overhead' or '*_overhead' "
            f"field (got {sorted(record)}); it cannot price a scheme"
        )
    return sum(parts)


def summarize_schemes(
    result: Any,
    metric: str = "detection_rate",
    confidence: float = 0.95,
    method: str = "wilson",
    cost: str = "attention_cost",
    cost_params: dict | None = None,
    axis: str = "scheme",
) -> list[SchemeSummary]:
    """Pool a finished sweep's points by scheme and price each scheme.

    ``result`` is an :class:`~repro.exec.results.ExperimentResult` whose
    grid has an ``axis`` (default ``scheme``) axis; every point's aggregate
    must expose ``metric_counts`` (campaign statistics do).  Rows come back
    sorted by overhead then rate -- cheap and effective first -- with
    unmeasured/unpriced schemes last.
    """
    if axis not in result.spec.axes:
        raise ValueError(
            f"experiment {result.spec.label!r} has no {axis!r} grid axis "
            f"(axes: {result.spec.axes}); pareto analysis compares schemes"
        )
    pooled: dict[Any, list] = {}
    for point in result.points:
        scheme = point.point[axis]
        counts = getattr(point.result, "metric_counts", None)
        if counts is None:
            raise ValueError(
                f"grid point {point.point!r} aggregated to a "
                f"{type(point.result).__name__} without metric_counts(); "
                "pareto analysis needs campaign statistics"
            )
        pooled.setdefault(scheme, []).append(counts(metric))
    summaries = []
    for scheme, pairs in pooled.items():
        successes = sum(s for s, _ in pairs)
        n = sum(total for _, total in pairs)
        if n:
            rate: float | None = successes / n
            interval = binomial_interval(
                successes, n, confidence=confidence, method=method
            )
        else:
            rate, interval = None, None
        summaries.append(
            SchemeSummary(
                scheme=scheme,
                n_points=len(pairs),
                successes=successes,
                n=n,
                rate=rate,
                interval=interval,
                overhead=scheme_overhead(scheme, cost=cost, cost_params=cost_params),
            )
        )
    summaries.sort(
        key=lambda s: (
            s.overhead is None,
            s.overhead if s.overhead is not None else 0.0,
            -(s.rate if s.rate is not None else 0.0),
            str(s.scheme),
        )
    )
    return annotate_dominance(summaries, metric=metric)


def annotate_dominance(
    summaries: list[SchemeSummary], metric: str = "detection_rate"
) -> list[SchemeSummary]:
    """Fill each scheme's ``dominated_by`` against the others.

    Dominance is on point estimates: at least as good on both the metric
    (direction set by ``metric``) and the overhead, strictly better on one.
    Unmeasured/unpriced schemes neither dominate nor are dominated.
    """
    sign = 1.0 if metric in _HIGHER_BETTER else -1.0
    annotated = []
    for mine in summaries:
        if not mine.comparable:
            annotated.append(replace(mine, dominated_by=()))
            continue
        dominators = []
        for other in summaries:
            if other is mine or not other.comparable:
                continue
            gain = sign * (other.rate - mine.rate)
            saving = mine.overhead - other.overhead
            if gain >= 0 and saving >= 0 and (gain > 0 or saving > 0):
                dominators.append(str(other.scheme))
        annotated.append(replace(mine, dominated_by=tuple(dominators)))
    return annotated


def pareto_frontier(summaries: list[SchemeSummary]) -> list[SchemeSummary]:
    """The Pareto-optimal subset, in the given (overhead-sorted) order."""
    return [summary for summary in summaries if summary.pareto]
