"""Analysis helpers: overhead/speedup arithmetic and table formatting for the benches."""

from repro.analysis.decision import (
    SchemeSummary,
    annotate_dominance,
    pareto_frontier,
    scheme_overhead,
    summarize_schemes,
)
from repro.analysis.overhead import geometric_mean, overhead_percent, scaled_series, speedup
from repro.analysis.reporting import (
    format_campaign_result,
    format_pareto_table,
    format_series,
    format_table,
    format_threshold_sweep,
)

__all__ = [
    "SchemeSummary",
    "annotate_dominance",
    "pareto_frontier",
    "scheme_overhead",
    "summarize_schemes",
    "geometric_mean",
    "overhead_percent",
    "scaled_series",
    "speedup",
    "format_campaign_result",
    "format_pareto_table",
    "format_series",
    "format_table",
    "format_threshold_sweep",
]
