"""Small numeric helpers shared by the benchmark harness."""

from __future__ import annotations

import numpy as np


def overhead_percent(protected_time: float, base_time: float) -> float:
    """Fault-tolerance overhead in percent: ``(protected - base) / base * 100``."""
    if base_time <= 0:
        raise ValueError("base_time must be positive")
    return (protected_time - base_time) / base_time * 100.0


def speedup(baseline_time: float, improved_time: float) -> float:
    """How many times faster ``improved_time`` is than ``baseline_time``."""
    if improved_time <= 0:
        raise ValueError("improved_time must be positive")
    return baseline_time / improved_time


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def scaled_series(times: list[float], reference: float | None = None) -> list[float]:
    """Normalise a series of times by a reference (its first element by default).

    The paper's Figure 9 reports *scaled* execution times, i.e. every bar is
    divided by the unprotected end-to-end attention time of that sequence
    length.
    """
    if not times:
        return []
    ref = reference if reference is not None else times[0]
    if ref <= 0:
        raise ValueError("reference time must be positive")
    return [t / ref for t in times]
