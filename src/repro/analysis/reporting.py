"""Plain-text table/series formatting used by the benchmark harness.

Every benchmark prints the rows/series of the table or figure it reproduces,
next to the values the paper reports, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment log (captured into EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], fmt: str = "{:.3g}") -> str:
    """Render one named series as ``name: x=y, x=y, ...`` (a figure's line/bars)."""
    pairs = ", ".join(f"{x}={fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_campaign_result(result, title: str | None = None) -> str:
    """Render a campaign aggregate (anything with ``CampaignResult.summary()``)."""
    stats = result.summary()
    return format_table(
        ["trials", "detection rate", "false alarm rate", "coverage", "mean output error"],
        [
            [
                stats["n_trials"],
                stats["detection_rate"],
                stats["false_alarm_rate"],
                stats["coverage"],
                stats["mean_output_error"],
            ]
        ],
        title=title,
    )


def format_sweep_result(result, title: str | None = None) -> str:
    """Render a cross-campaign sweep as one merged table.

    ``result`` is a :class:`repro.fault.sweep.SweepResult`: one row per grid
    point, the grid axes as the leading columns and the campaign aggregate
    statistics (duck-typed ``CampaignResult.summary()``) as the trailing
    columns.  When the campaign's aggregate has no ``summary()`` (e.g. the
    threshold-sweep kernels return :class:`ThresholdSweepPoint` lists), the
    stat columns are replaced by one compact ``result`` column.
    """
    axes = result.sweep.axes
    if title is None:
        title = (
            f"sweep: {result.sweep.label} "
            f"({len(result.entries)} campaigns x {result.sweep.n_trials} trials)"
        )
    stat_keys = ["n_trials", "detection_rate", "false_alarm_rate", "coverage", "mean_output_error"]

    def stats(entry):
        # Duck-typed CampaignResult: a summary() carrying the expected keys.
        if not hasattr(entry.result, "summary"):
            return None
        values = entry.result.summary()
        if not all(k in values for k in stat_keys):
            return None
        return values

    if all(stats(entry) is not None for entry in result.entries):
        headers = axes + ["trials", "detection", "false alarm", "coverage", "mean err"]
        rows = [
            [entry.point[a] for a in axes] + [stats(entry)[k] for k in stat_keys]
            for entry in result.entries
        ]
    else:
        headers = axes + ["result"]
        rows = [
            [entry.point[a] for a in axes] + [_fmt_compact_result(entry.result)]
            for entry in result.entries
        ]
    return format_table(headers, rows, title=title)


def _fmt_compact_result(result) -> str:
    """One-cell rendering of a campaign aggregate without a ``summary()``."""
    if isinstance(result, list) and result and hasattr(result[0], "threshold"):
        return "; ".join(
            f"t={_fmt(p.threshold)} det={p.detection_rate:.2f} fa={p.false_alarm_rate:.2f}"
            for p in result
        )
    return repr(result)


def format_threshold_sweep(points, title: str | None = None) -> str:
    """Render a threshold sweep (duck-typed ``ThresholdSweepPoint`` list)."""
    thresholds = [p.threshold for p in points]
    lines = [] if title is None else [title]
    lines.append(format_series("fault detection rate", thresholds, [p.detection_rate for p in points]))
    lines.append(format_series("false alarm rate", thresholds, [p.false_alarm_rate for p in points]))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        # Sub-milli magnitudes (bit-error rates, tight thresholds) would
        # render as 0.000 at fixed precision; fall back to significant digits.
        if cell != 0.0 and abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
