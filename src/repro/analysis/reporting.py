"""Plain-text table/series formatting used by the benchmark harness and CLIs.

Every benchmark prints the rows/series of the table or figure it reproduces,
next to the values the paper reports, so `pytest benchmarks/ --benchmark-only`
doubles as the experiment log (captured into EXPERIMENTS.md).

Campaign/sweep aggregates render through the explicit
:class:`~repro.exec.results.SummaryProtocol`: anything with a
``summary() -> dict`` formats as stat columns, threshold sweeps have their
dedicated renderers, and any other object raises a clear ``TypeError``
instead of silently falling through a duck-typed blank.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], fmt: str = "{:.3g}") -> str:
    """Render one named series as ``name: x=y, x=y, ...`` (a figure's line/bars)."""
    pairs = ", ".join(f"{x}={fmt.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


#: Pretty column names for the canonical campaign statistics (single-campaign
#: table on the left, compact sweep-table variant on the right).
_CAMPAIGN_HEADERS = {
    "n_trials": "trials",
    "n_injected": "injected",
    "n_clean": "clean",
    "detection_rate": "detection rate",
    "false_alarm_rate": "false alarm rate",
    "coverage": "coverage",
    "mean_output_error": "mean output error",
}
_SWEEP_HEADERS = {
    "n_trials": "trials",
    "n_injected": "injected",
    "n_clean": "clean",
    "detection_rate": "detection",
    "false_alarm_rate": "false alarm",
    "coverage": "coverage",
    "mean_output_error": "mean err",
}
#: Pretty column names for grid axes (detection-coverage sweeps commonly add
#: a ``fault_model`` axis; every other axis renders verbatim).
_AXIS_HEADERS = {
    "fault_model": "fault model",
}


def _summary_of(result, context: str) -> dict:
    """The explicit protocol check: ``summary()`` or a clear error."""
    from repro.exec.results import SummaryProtocol

    if not isinstance(result, SummaryProtocol):
        raise TypeError(
            f"{context} is a {type(result).__name__}, which does not implement "
            "the SummaryProtocol (summary() -> dict); wrap it in a typed "
            "result or render it with its dedicated formatter"
        )
    return result.summary()


def format_campaign_result(result, title: str | None = None) -> str:
    """Render one campaign aggregate (any :class:`SummaryProtocol` object)."""
    stats = _summary_of(result, "campaign result")
    headers = [_CAMPAIGN_HEADERS.get(key, key) for key in stats]
    return format_table(headers, [list(stats.values())], title=title)


def format_sweep_result(result, title: str | None = None) -> str:
    """Render a cross-campaign sweep as one merged table.

    ``result`` is a :class:`repro.fault.sweep.SweepResult` or
    :class:`repro.exec.results.ExperimentResult`: one row per grid point, the
    grid axes as the leading columns and the per-point summary statistics as
    the trailing columns.  Every aggregate must implement the
    :class:`~repro.exec.results.SummaryProtocol` and agree on its summary
    keys -- a result lacking ``summary()`` (other than the threshold-sweep
    lists, which have their own compact rendering) raises a clear
    ``TypeError`` instead of silently rendering a blank or lopsided column.
    """
    axes = result.sweep.axes
    if title is None:
        title = (
            f"sweep: {result.sweep.label} "
            f"({len(result.entries)} campaigns x {result.sweep.n_trials} trials)"
        )
    entries = list(result.entries)
    if not entries:
        return format_table(axes, [], title=title)

    from repro.exec.results import SummaryProtocol

    axis_headers = [_AXIS_HEADERS.get(axis, axis) for axis in axes]
    if all(_is_threshold_sweep(entry.result) for entry in entries):
        headers = axis_headers + ["result"]
        rows = [
            [entry.point[a] for a in axes] + [_fmt_compact_result(entry.result)]
            for entry in entries
        ]
        return format_table(headers, rows, title=title)

    lacking = [entry for entry in entries if not isinstance(entry.result, SummaryProtocol)]
    if lacking:
        bad = lacking[0]
        raise TypeError(
            f"sweep entry {bad.point!r} aggregated to a "
            f"{type(bad.result).__name__}, which does not implement the "
            "SummaryProtocol (summary() -> dict); every grid point must "
            "produce a summarisable result to share one table"
        )

    keys = [key for key in entries[0].result.summary() if key not in axes]
    rows = []
    for entry in entries:
        values = entry.result.summary()
        missing = [key for key in keys if key not in values]
        if missing:
            raise ValueError(
                f"sweep entry {entry.point!r} summary lacks keys {missing} "
                "present in the first grid point; summaries must agree to "
                "share one table"
            )
        rows.append([entry.point[a] for a in axes] + [values[k] for k in keys])
    headers = axis_headers + [_SWEEP_HEADERS.get(key, key) for key in keys]
    return format_table(headers, rows, title=title)


def format_experiment_result(result, title: str | None = None) -> str:
    """Render a typed :class:`~repro.exec.results.ExperimentResult`.

    A sweep renders as the merged grid table; a single campaign dispatches on
    its aggregate (campaign statistics, threshold curves, or ``repr``).
    """
    if result.spec.is_sweep:
        return format_sweep_result(result, title=title)
    if title is None:
        title = f"campaign: {result.spec.label} ({result.spec.n_trials} trials)"
    return format_point_result(result.result, title=title)


def format_point_result(result, title: str | None = None) -> str:
    """Render one grid point's aggregate, whatever its type."""
    from repro.exec.results import SummaryProtocol

    if _is_threshold_sweep(result):
        return format_threshold_sweep(result, title=title)
    if isinstance(result, SummaryProtocol):
        return format_campaign_result(result, title=title)
    prefix = f"{title}\n" if title else ""
    return prefix + repr(result)


def _is_threshold_sweep(result) -> bool:
    return isinstance(result, list) and bool(result) and hasattr(result[0], "threshold")


def _fmt_compact_result(result) -> str:
    """One-cell rendering of a threshold-sweep aggregate."""
    return "; ".join(
        f"t={_fmt(p.threshold)} det={p.detection_rate:.2f} fa={p.false_alarm_rate:.2f}"
        for p in result
    )


def format_threshold_sweep(points, title: str | None = None) -> str:
    """Render a threshold sweep (duck-typed ``ThresholdSweepPoint`` list)."""
    thresholds = [p.threshold for p in points]
    lines = [] if title is None else [title]
    lines.append(format_series("fault detection rate", thresholds, [p.detection_rate for p in points]))
    lines.append(format_series("false alarm rate", thresholds, [p.false_alarm_rate for p in points]))
    return "\n".join(lines)


def format_pareto_table(
    summaries, metric: str = "detection_rate", title: str | None = None
) -> str:
    """Render scheme Pareto analysis (``repro pareto``) as one table.

    One row per :class:`~repro.analysis.decision.SchemeSummary`: pooled
    counts, the metric's point estimate with its confidence interval,
    the roofline overhead, and the verdict -- ``pareto`` for frontier
    schemes, ``dominated by ...`` otherwise.  An unmeasured metric (zero
    denominator) or unpriced scheme renders ``n/a`` rather than a fake 0.
    """
    metric_header = _SWEEP_HEADERS.get(metric, metric)
    headers = ["scheme", "points", "counts", metric_header, "ci", "overhead", "verdict"]
    rows = []
    for summary in summaries:
        if summary.rate is None:
            rate, interval = "n/a", "n/a"
        else:
            rate = f"{summary.rate:.4f}"
            lo, hi = summary.interval
            interval = f"[{lo:.4f}, {hi:.4f}]"
        overhead = "n/a" if summary.overhead is None else f"{summary.overhead:.4f}"
        if not summary.comparable:
            verdict = "n/a (unmeasured)"
        elif summary.pareto:
            verdict = "pareto"
        else:
            verdict = "dominated by " + ", ".join(summary.dominated_by)
        rows.append(
            [
                summary.scheme,
                summary.n_points,
                f"{summary.successes}/{summary.n}",
                rate,
                interval,
                overhead,
                verdict,
            ]
        )
    return format_table(headers, rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        # Sub-milli magnitudes (bit-error rates, tight thresholds) would
        # render as 0.000 at fixed precision; fall back to significant digits.
        if cell != 0.0 and abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
