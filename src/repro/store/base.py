"""The :class:`ResultsStore` strategy interface and its registry.

Persistence used to be hard-wired to one on-disk shape: the engine composed
JSONL file names, wrote ``experiment.json`` manifests inline and dropped
progress sidecars next to campaign files, and every reader re-parsed the raw
files.  This module makes storage a strategy layer the way executors,
schemes, scale policies and fault models already are: a
:class:`ResultsStore` owns the *full* persistence lifecycle of one
experiment --

* **write side** (driven by the engine): layout validation, manifest
  persistence and resume-identity checks (:meth:`ResultsStore.prepare`),
  per-grid-point :class:`PointStore` handles (open / durable append /
  canonical finalisation / resume enumeration), progress-snapshot
  persistence, and completion cleanup (:meth:`ResultsStore.finalize`);
* **read side** (driven by ``repro report|pareto|query``): a counts-only
  :meth:`ResultsStore.load_view`, full per-point record sets
  (:meth:`ResultsStore.point_records`), memory-bounded record streaming
  (:meth:`ResultsStore.iter_records`) and canonical-bytes export
  (:meth:`ResultsStore.export_canonical`) so any backend can be
  byte-compared against the JSONL reference layout.

Backends register with :func:`register_store`; the built-ins are ``"jsonl"``
(:mod:`repro.store.jsonl` -- the historical layout, byte-for-byte) and
``"sqlite"`` (:mod:`repro.store.sqlite` -- one queryable database per
experiment).  :func:`build_store` selects a backend by name for a run;
:func:`open_store` sniffs an existing results path (SQLite magic bytes vs
JSONL/directory) so the reporting verbs work transparently on either.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

# The interface layer deliberately imports nothing from ``repro.exec`` at
# module scope: the engine imports this module, and ``repro.exec.__init__``
# imports the engine, so an eager exec import here would be circular.
from repro.fault.runner import CampaignSpec, _canonical_json

if TYPE_CHECKING:
    from repro.exec.spec import ExperimentSpec

#: A per-trial record: a JSON-serialisable mapping produced by a trial kernel
#: (the same alias ``repro.exec.checkpoint`` defines; duplicated to keep this
#: module import-light).
TrialRecord = dict

#: Name of the default backend (the historical JSONL layout).
DEFAULT_STORE = "jsonl"

#: Name of the spec manifest an engine run drops into a sweep results
#: directory (lets ``python -m repro report <dir>`` rebuild the experiment).
#: Alongside the spec it carries a ``"progress"`` completion snapshot, kept
#: current as grid points finish so a partial run's state survives a kill.
MANIFEST_NAME = "experiment.json"


def progress_sidecar_path(results_path: str | Path) -> Path:
    """Progress-snapshot sidecar of a single-campaign results file.

    A campaign checkpoints into one JSONL file and has no sweep manifest to
    carry its completion snapshot, so the engine persists the counts-only
    snapshot into ``<results>.progress.json`` next to it.  The sidecar is
    removed when the run completes: its presence marks an interrupted (or
    in-flight) run, and ``python -m repro report`` reads it to show the
    completion state even before any trial record has landed.
    """
    results_path = Path(results_path)
    return results_path.with_name(results_path.name + ".progress.json")


def read_manifest(path: str | Path) -> tuple["ExperimentSpec", dict | None]:
    """Parse an ``experiment.json`` manifest into ``(spec, progress or None)``.

    The manifest is the experiment spec plus an optional ``"progress"``
    completion snapshot (see :meth:`ProgressTracker.snapshot`); manifests
    written before progress persistence existed parse fine (``None``).
    """
    from repro.exec.spec import ExperimentSpec

    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"manifest {path} is not a JSON object")
    progress = data.pop("progress", None)
    return ExperimentSpec.from_dict(data), progress


def experiment_resume_key(spec: "ExperimentSpec") -> str:
    """Resume-identity of an experiment: the fields that shape trial records.

    The cosmetic ``name``, the ``adaptive`` stopping policy and the
    ``store`` backend are excluded: records are count-invariant
    (prefix-stable seed streams), the policy only decides *how many* trials
    run, and the backend only decides *where* they land -- so re-running a
    results path with a different ``--target-ci`` (or after a
    ``repro store convert``) extends the same results rather than refusing.
    ``n_trials`` stays in the key deliberately -- it is the sweep *shape* as
    written, and per-point handles guard their own record counts via
    :meth:`PointStore.load`.
    """
    data = {
        k: v
        for k, v in spec.to_dict().items()
        if k not in ("name", "adaptive", "store")
    }
    return _canonical_json(data)


class PointStore(abc.ABC):
    """Persistence handle of one grid point: resume, append, finalise.

    The engine drives one handle per grid point through a fixed lifecycle:
    :meth:`load` (resume enumeration + identity guard), :meth:`open` on the
    first fresh record, :meth:`append` per finished trial (durable
    immediately -- a kill loses at most the in-flight trial), :meth:`close`,
    and :meth:`write_canonical` once the point completes.  The JSONL
    implementation is :class:`~repro.exec.checkpoint.TrialCheckpoint`
    (unchanged bytes); other backends implement the same contract.
    """

    @abc.abstractmethod
    def load(self) -> dict[int, TrialRecord]:
        """Committed records keyed by trial index (resume state).

        Must raise ``ValueError`` when the stored data belongs to a
        different campaign spec, or holds committed records past the spec's
        trial count (a shrunken spec must not silently destroy results).
        """

    @abc.abstractmethod
    def open(self, header: bool) -> Any:
        """Open the append sink (``header`` marks a fresh, record-less point)."""

    @abc.abstractmethod
    def append(self, index: int, record: TrialRecord, sink: Any = None) -> None:
        """Durably commit one finished trial."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the append sink (idempotent)."""

    @abc.abstractmethod
    def write_canonical(self, ordered: Sequence[TrialRecord]) -> None:
        """Finalise the completed point in canonical trial-sorted form.

        The persisted header/count must reflect ``len(ordered)`` so an
        adaptively stopped (or topped-up) point reads back as a complete,
        self-consistent campaign.
        """


@dataclass(frozen=True)
class PointView:
    """Counts-only read model of one stored grid point.

    ``spec`` carries the on-disk header count (an adaptive point's actual
    stopped/topped-up ``n_trials``), so ``complete`` agrees with what ran,
    not with the manifest's initial budget.
    """

    index: int
    point: dict
    spec: CampaignSpec
    n_done: int

    @property
    def complete(self) -> bool:
        return self.n_done == self.spec.n_trials


@dataclass(frozen=True)
class StoreView:
    """Counts-only read model of a stored experiment (finished or in-flight)."""

    spec: ExperimentSpec
    points: list[PointView] = field(default_factory=list)
    progress: dict | None = None

    @property
    def complete(self) -> bool:
        return all(point.complete for point in self.points)


class ResultsStore(abc.ABC):
    """Strategy interface owning the persistence lifecycle of one experiment.

    Parameters
    ----------
    path:
        Backend-specific results location (a JSONL file or directory, a
        SQLite database file).
    spec:
        The experiment being written.  Read-only openers
        (:func:`open_store`) construct without a spec and use only the
        read-side methods.
    """

    #: Registry name; set by :func:`register_store`.
    name: str = ""

    def __init__(self, path: str | Path, spec: ExperimentSpec | None = None) -> None:
        self.path = Path(path)
        self.spec = spec

    # ------------------------------------------------------------------ #
    # Write lifecycle (engine side)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def validate_layout(self) -> None:
        """Reject a results path whose shape cannot hold this experiment.

        Called at runner construction, before any worker spawns.  May also
        clean up stale in-flight markers left by a *different* experiment
        when no committed records exist (see the JSONL sidecar rules).
        """

    @abc.abstractmethod
    def prepare(self) -> None:
        """Persist/validate the experiment identity before the run starts.

        Must refuse (``ValueError``) when the path already belongs to a
        different experiment (by :func:`experiment_resume_key`), so two
        sweeps never mix results in one location.
        """

    @abc.abstractmethod
    def point_store(self, index: int, spec: CampaignSpec, run_spec: CampaignSpec) -> PointStore:
        """The persistence handle of grid point ``index``.

        ``spec`` is the manifest expansion (names the storage location);
        ``run_spec`` is what actually runs -- its ``n_trials`` carries an
        adaptive cap and is what resume guards and headers are checked
        against.
        """

    @abc.abstractmethod
    def persist_progress(self, snapshot: dict) -> None:
        """Atomically refresh the persisted completion snapshot (counts only)."""

    @abc.abstractmethod
    def finalize(self) -> None:
        """Mark the run complete (drop in-flight markers such as sidecars)."""

    def close(self) -> None:
        """Release backend resources (idempotent; reopened on demand)."""

    # ------------------------------------------------------------------ #
    # Read side (report / pareto / query)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def load_view(self) -> StoreView:
        """Counts-only view of the stored experiment (cheap, no record load)."""

    @abc.abstractmethod
    def point_records(self, index: int) -> "Any":
        """Full :class:`~repro.exec.results.TrialRecordSet` of one point."""

    @abc.abstractmethod
    def iter_records(
        self, indices: Sequence[int] | None = None
    ) -> Iterator[tuple[int, int, TrialRecord]]:
        """Stream ``(point index, trial index, record)`` without materialising.

        ``indices`` restricts the stream to those grid points (all points
        when ``None``).  Order is by point then trial.  This is the
        ``repro query`` primitive: memory stays bounded at any record count.
        """

    @abc.abstractmethod
    def count_records(self, indices: Sequence[int] | None = None) -> int:
        """Committed record count (indexed/cached where the backend can)."""

    @abc.abstractmethod
    def export_canonical(self, index: int) -> bytes:
        """The point's records as canonical checkpoint-JSONL bytes.

        For a complete point this must be byte-identical to the file the
        ``jsonl`` backend would have written, which is what the
        cross-backend parity suites compare.
        """


class NullStore(ResultsStore):
    """The no-persistence store used when a run has no results path."""

    name = "null"

    def __init__(self, spec: ExperimentSpec | None = None) -> None:
        self.path = None  # type: ignore[assignment]
        self.spec = spec

    def validate_layout(self) -> None: ...

    def prepare(self) -> None: ...

    def point_store(self, index: int, spec: CampaignSpec, run_spec: CampaignSpec) -> PointStore:
        from repro.exec.checkpoint import TrialCheckpoint

        return TrialCheckpoint(run_spec, None)

    def persist_progress(self, snapshot: dict) -> None: ...

    def finalize(self) -> None: ...

    def load_view(self) -> StoreView:
        raise ValueError("a run without a results path persists nothing to read")

    def point_records(self, index: int):
        raise ValueError("a run without a results path persists nothing to read")

    def iter_records(self, indices: Sequence[int] | None = None):
        raise ValueError("a run without a results path persists nothing to read")

    def count_records(self, indices: Sequence[int] | None = None) -> int:
        raise ValueError("a run without a results path persists nothing to read")

    def export_canonical(self, index: int) -> bytes:
        raise ValueError("a run without a results path persists nothing to read")


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_STORES: dict[str, type[ResultsStore]] = {}


def register_store(name: str) -> Callable[[type[ResultsStore]], type[ResultsStore]]:
    """Class decorator registering a :class:`ResultsStore` under ``name``."""

    def decorator(cls: type[ResultsStore]) -> type[ResultsStore]:
        if name in _STORES:
            raise ValueError(f"results store {name!r} is already registered")
        if not (isinstance(cls, type) and issubclass(cls, ResultsStore)):
            raise TypeError(f"{cls!r} must subclass ResultsStore")
        cls.name = name
        _STORES[name] = cls
        return cls

    return decorator


def get_store(name: str) -> type[ResultsStore]:
    """Look up a registered store class by name."""
    try:
        return _STORES[name]
    except KeyError:
        raise ValueError(
            f"unknown results store {name!r}; registered: {available_stores()}"
        ) from None


def available_stores() -> list[str]:
    """Sorted names of all registered results-store backends."""
    return sorted(_STORES)


def build_store(
    store: str | ResultsStore | None,
    path: str | Path | None,
    spec: ExperimentSpec | None = None,
) -> ResultsStore:
    """Resolve the store of a run: explicit choice > spec field > default.

    With no results path there is nothing to persist, so every backend
    collapses to the :class:`NullStore` and the run stays purely in-memory.
    """
    if path is None:
        return NullStore(spec=spec)
    if isinstance(store, ResultsStore):
        return store
    name = store or (spec.store if spec is not None and spec.store else DEFAULT_STORE)
    return get_store(name)(path, spec=spec)


#: First bytes of every SQLite database file (the format magic).
SQLITE_MAGIC = b"SQLite format 3\x00"


def sniff_store(path: str | Path) -> str:
    """Backend name of an existing results path (by content, not suffix).

    A file opening with the SQLite magic bytes is ``"sqlite"``; anything
    else -- a JSONL file, a sweep results directory, or a bare
    progress sidecar -- is the ``"jsonl"`` layout.
    """
    path = Path(path)
    if path.is_file():
        try:
            with path.open("rb") as handle:
                if handle.read(len(SQLITE_MAGIC)) == SQLITE_MAGIC:
                    return "sqlite"
        except OSError:
            pass
    return DEFAULT_STORE


def open_store(path: str | Path, spec: ExperimentSpec | None = None) -> ResultsStore:
    """Open an existing results path with the backend that wrote it."""
    return get_store(sniff_store(path))(path, spec=spec)
