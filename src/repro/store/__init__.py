"""Pluggable results stores: where experiment records live on disk.

The engine runs experiments; a :class:`ResultsStore` persists them.  The
interface (``repro.store.base``) owns the full lifecycle -- per-point
open/append/commit, manifest and progress-snapshot persistence, canonical
finalization, resume enumeration, and the read side that ``repro
report|pareto|query`` consume.  Two backends ship:

* ``"jsonl"`` (default) -- the historical checkpoint layout, byte-for-byte:
  per-point JSONL files, ``experiment.json`` manifest, progress sidecar;
* ``"sqlite"`` -- one stdlib-:mod:`sqlite3` WAL database per experiment
  with the same commit semantics and an indexed record count, for runs that
  scale to millions of trial records.

Select with ``repro run --store sqlite`` (or a ``"store"`` spec field);
:func:`open_store` sniffs an existing results path so readers need not know
which backend wrote it; ``repro store convert`` migrates between them.
Third-party backends register with :func:`register_store`.
"""

from repro.store.base import (
    DEFAULT_STORE,
    NullStore,
    PointStore,
    PointView,
    ResultsStore,
    StoreView,
    available_stores,
    build_store,
    experiment_resume_key,
    get_store,
    open_store,
    register_store,
    sniff_store,
)
from repro.store.convert import convert_store, default_convert_path
from repro.store.jsonl import (
    MANIFEST_NAME,
    JsonlStore,
    canonical_record_bytes,
    progress_sidecar_path,
    read_manifest,
)
from repro.store.query import QueryFilter, count_query, query_records
from repro.store.sqlite import SqlitePointStore, SqliteStore

__all__ = [
    "DEFAULT_STORE",
    "MANIFEST_NAME",
    "JsonlStore",
    "NullStore",
    "PointStore",
    "PointView",
    "QueryFilter",
    "ResultsStore",
    "SqlitePointStore",
    "SqliteStore",
    "StoreView",
    "available_stores",
    "build_store",
    "canonical_record_bytes",
    "convert_store",
    "count_query",
    "default_convert_path",
    "experiment_resume_key",
    "get_store",
    "open_store",
    "progress_sidecar_path",
    "query_records",
    "read_manifest",
    "register_store",
    "sniff_store",
]
