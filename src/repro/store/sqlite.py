"""The ``"sqlite"`` results store: one queryable database per experiment.

Same commit semantics as the JSONL layout -- every finished trial is durable
the moment :meth:`SqlitePointStore.append` returns, a killed run loses at
most the in-flight trial, and resume refuses shrunken specs -- but the
records land in an indexed stdlib :mod:`sqlite3` database instead of flat
files, so ``repro query`` filters and counts stay fast at millions of rows.

Layout (schema version 1)::

    meta    (key TEXT PRIMARY KEY, value TEXT)
            -- "schema_version", "experiment" (canonical spec JSON),
            -- "progress" (latest completion snapshot JSON)
    points  (point INTEGER PRIMARY KEY, spec TEXT, n_done INTEGER,
             complete INTEGER)
            -- one row per grid point; ``spec`` is the point's run header
            -- (the same dict a JSONL checkpoint carries on its first line)
            -- and ``n_done`` is maintained in the same transaction as each
            -- trial insert, so SUM(n_done) is a crash-consistent O(points)
            -- record count
    trials  (point INTEGER, trial INTEGER, record TEXT,
             PRIMARY KEY (point, trial)) WITHOUT ROWID

Durability: WAL journaling with ``synchronous=NORMAL`` (a WAL commit is
crash-safe against process kills; an OS/power loss can lose the tail *after*
the last checkpoint but never tears a transaction), autocommit connection
with one explicit ``BEGIN IMMEDIATE`` transaction per append.  A transaction
killed mid-commit simply rolls back when the database reopens -- the
torn-write analogue of the JSONL layout's skipped partial line.

Byte parity: :meth:`SqliteStore.export_canonical` re-emits any point as
canonical checkpoint-JSONL bytes (the stored run header plus trial-sorted
records), byte-identical to the file a ``--store jsonl`` run of the same
spec writes -- which is how the parity suites and the CI sqlite leg compare
backends, and what ``repro store convert`` replays.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Iterator, Sequence

from repro.exec.checkpoint import TrialRecord
from repro.exec.results import TrialRecordSet
from repro.exec.spec import ExperimentSpec
from repro.fault.runner import CampaignSpec, _canonical_json, _resume_key
from repro.store.base import (
    PointStore,
    PointView,
    ResultsStore,
    StoreView,
    experiment_resume_key,
    register_store,
)
from repro.store.jsonl import canonical_record_bytes

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    point    INTEGER PRIMARY KEY,
    spec     TEXT NOT NULL,
    n_done   INTEGER NOT NULL DEFAULT 0,
    complete INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS trials (
    point  INTEGER NOT NULL,
    trial  INTEGER NOT NULL,
    record TEXT NOT NULL,
    PRIMARY KEY (point, trial)
) WITHOUT ROWID;
"""


class SqlitePointStore(PointStore):
    """One grid point's handle into the experiment database."""

    def __init__(self, store: "SqliteStore", index: int, run_spec: CampaignSpec) -> None:
        self.store = store
        self.index = index
        self.spec = run_spec

    # ------------------------------------------------------------------ #
    def load(self) -> dict[int, TrialRecord]:
        """Committed records of this point (resume state).

        Mirrors :meth:`TrialCheckpoint.load`: refuses a stored point of a
        different campaign spec, and refuses committed records past the
        spec's trial count (a shrunken spec must not silently destroy
        results).  Uncommitted transactions never show up here -- sqlite
        rolled them back when the database reopened.
        """
        conn = self.store._connect()
        row = conn.execute(
            "SELECT spec FROM points WHERE point = ?", (self.index,)
        ).fetchone()
        if row is not None and _resume_key(json.loads(row[0])) != _resume_key(
            self.spec.to_dict()
        ):
            raise ValueError(
                f"{self.store.path} point {self.index} holds results for a "
                "different campaign spec; refusing to resume"
            )
        records = {
            trial: json.loads(record)
            for trial, record in conn.execute(
                "SELECT trial, record FROM trials WHERE point = ?", (self.index,)
            )
        }
        extra = sorted(i for i in records if i >= self.spec.n_trials)
        if extra:
            raise ValueError(
                f"{self.store.path} point {self.index} holds {len(records)} "
                f"committed trial records up to index {max(records)}, but the "
                f"spec asks for only {self.spec.n_trials} trials; refusing to "
                "resume (completing the run would finalize the point without "
                f"the {len(extra)} records past the spec count -- raise "
                "n_trials or point the run at a fresh results path)"
            )
        return records

    def open(self, header: bool):
        """Ensure the point row exists (the run header of a fresh point)."""
        conn = self.store._connect()
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "INSERT OR IGNORE INTO points (point, spec) VALUES (?, ?)",
            (self.index, _canonical_json(self.spec.to_dict())),
        )
        conn.execute("COMMIT")
        return conn

    def append(self, index: int, record: TrialRecord, sink=None) -> None:
        """Durably commit one finished trial.

        The trial insert and the point's ``n_done`` counter move in the same
        transaction (with an existence probe first, since a re-delivered
        record from a re-leased distributed batch must not inflate the
        count), so a kill between any two statements leaves the count and
        the records consistent.
        """
        conn = self.store._connect()
        conn.execute("BEGIN IMMEDIATE")
        try:
            fresh = not conn.execute(
                "SELECT EXISTS(SELECT 1 FROM trials WHERE point = ? AND trial = ?)",
                (self.index, index),
            ).fetchone()[0]
            conn.execute(
                "INSERT OR REPLACE INTO trials (point, trial, record) VALUES (?, ?, ?)",
                (self.index, index, _canonical_json(record)),
            )
            if fresh:
                conn.execute(
                    "UPDATE points SET n_done = n_done + 1 WHERE point = ?",
                    (self.index,),
                )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise

    def close(self) -> None:
        """No per-point handle to release: the store owns the connection."""

    def write_canonical(self, ordered: Sequence[TrialRecord]) -> None:
        """Finalise the point: header count = actual count, complete flag set.

        The JSONL analogue rewrites the whole file; here only the point row
        changes (records are already trial-keyed), and the records are
        re-asserted in one transaction so the finalised state never mixes
        with a partial append.  Re-finalising an already-complete point is a
        no-op, mirroring the byte-compare skip in
        :meth:`TrialCheckpoint.write_canonical`.
        """
        header = self.spec.to_dict()
        header["n_trials"] = len(ordered)
        header_json = _canonical_json(header)
        conn = self.store._connect()
        row = conn.execute(
            "SELECT spec, n_done, complete FROM points WHERE point = ?",
            (self.index,),
        ).fetchone()
        if row is not None and row == (header_json, len(ordered), 1):
            return
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR REPLACE INTO points (point, spec, n_done, complete) "
                "VALUES (?, ?, ?, 1)",
                (self.index, header_json, len(ordered)),
            )
            conn.execute(
                "DELETE FROM trials WHERE point = ? AND trial >= ?",
                (self.index, len(ordered)),
            )
            conn.executemany(
                "INSERT OR REPLACE INTO trials (point, trial, record) VALUES (?, ?, ?)",
                [
                    (self.index, i, _canonical_json(record))
                    for i, record in enumerate(ordered)
                ],
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise


@register_store("sqlite")
class SqliteStore(ResultsStore):
    """One-database-per-experiment store on stdlib :mod:`sqlite3`."""

    def __init__(self, path: str | Path, spec: ExperimentSpec | None = None) -> None:
        super().__init__(path, spec=spec)
        self._conn: sqlite3.Connection | None = None

    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Autocommit mode: transactions are explicit BEGIN/COMMIT pairs,
            # so nothing lingers uncommitted between appends and a kill can
            # only lose the statement batch it interrupted.
            conn = sqlite3.connect(self.path, isolation_level=None)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            version = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if version is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(version[0]) != SCHEMA_VERSION:
                conn.close()
                raise ValueError(
                    f"{self.path} uses results-store schema version "
                    f"{version[0]}, but this build reads version {SCHEMA_VERSION}"
                )
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # ------------------------------------------------------------------ #
    # Write lifecycle
    # ------------------------------------------------------------------ #
    def validate_layout(self) -> None:
        if self.path.is_dir():
            raise ValueError(
                f"results path {self.path} is a directory, but the sqlite "
                "store keeps one database file per experiment"
            )

    def prepare(self) -> None:
        if self.spec is None:
            return
        conn = self._connect()
        stored = conn.execute(
            "SELECT value FROM meta WHERE key = 'experiment'"
        ).fetchone()
        if stored is not None:
            existing = ExperimentSpec.from_dict(json.loads(stored[0]))
            if experiment_resume_key(existing) != experiment_resume_key(self.spec):
                raise ValueError(
                    f"{self.path} describes a different experiment; refusing "
                    "to mix results of two experiments in one database"
                )
            return
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('experiment', ?)",
            (self.spec.to_json(),),
        )

    def point_store(
        self, index: int, spec: CampaignSpec, run_spec: CampaignSpec
    ) -> SqlitePointStore:
        return SqlitePointStore(self, index, run_spec)

    def persist_progress(self, snapshot: dict) -> None:
        self._connect().execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('progress', ?)",
            (_canonical_json(snapshot),),
        )

    def finalize(self) -> None:
        """Nothing to drop: progress lives inside the database it describes,
        keyed to this experiment, so it can never leak onto another spec."""

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def _read_experiment(self) -> tuple[ExperimentSpec, dict | None]:
        if not self.path.exists():
            raise ValueError(f"results path {self.path} does not exist")
        conn = self._connect()
        stored = conn.execute(
            "SELECT value FROM meta WHERE key = 'experiment'"
        ).fetchone()
        if stored is None:
            raise ValueError(f"{self.path} holds no experiment manifest")
        progress_row = conn.execute(
            "SELECT value FROM meta WHERE key = 'progress'"
        ).fetchone()
        progress = json.loads(progress_row[0]) if progress_row is not None else None
        return ExperimentSpec.from_dict(json.loads(stored[0])), progress

    def _point_rows(self) -> dict[int, tuple[dict, int]]:
        """``{point index: (stored run header, n_done)}`` for existing rows."""
        conn = self._connect()
        return {
            point: (json.loads(spec), n_done)
            for point, spec, n_done in conn.execute(
                "SELECT point, spec, n_done FROM points"
            )
        }

    def load_view(self) -> StoreView:
        spec, progress = self._read_experiment()
        rows = self._point_rows()
        points = []
        for index, (point, campaign_spec) in enumerate(spec.expanded()):
            point_spec, n_done = campaign_spec, 0
            if index in rows:
                header, n_done = rows[index]
                point_spec = CampaignSpec.from_dict(header)
            points.append(
                PointView(index=index, point=point, spec=point_spec, n_done=n_done)
            )
        return StoreView(spec=spec, points=points, progress=progress)

    def point_records(self, index: int) -> TrialRecordSet:
        spec, _ = self._read_experiment()
        _, campaign_spec = spec.expanded()[index]
        rows = self._point_rows()
        point_spec = (
            CampaignSpec.from_dict(rows[index][0]) if index in rows else campaign_spec
        )
        records = {
            trial: json.loads(record)
            for trial, record in self._connect().execute(
                "SELECT trial, record FROM trials WHERE point = ?", (index,)
            )
        }
        return TrialRecordSet(spec=point_spec, records=records)

    def iter_records(
        self, indices: Sequence[int] | None = None
    ) -> Iterator[tuple[int, int, TrialRecord]]:
        if not self.path.exists():
            raise ValueError(f"results path {self.path} does not exist")
        conn = self._connect()
        if indices is None:
            cursor = conn.execute(
                "SELECT point, trial, record FROM trials ORDER BY point, trial"
            )
        else:
            wanted = list(indices)
            marks = ",".join("?" * len(wanted))
            cursor = conn.execute(
                f"SELECT point, trial, record FROM trials WHERE point IN ({marks}) "
                "ORDER BY point, trial",
                wanted,
            )
        for point, trial, record in cursor:
            yield point, trial, json.loads(record)

    def count_records(self, indices: Sequence[int] | None = None) -> int:
        """Committed record count from the per-point counters: O(points),
        not O(records), and crash-consistent because each counter moves in
        the same transaction as its trial insert."""
        conn = self._connect()
        if indices is None:
            row = conn.execute("SELECT COALESCE(SUM(n_done), 0) FROM points").fetchone()
        else:
            wanted = list(indices)
            marks = ",".join("?" * len(wanted))
            row = conn.execute(
                f"SELECT COALESCE(SUM(n_done), 0) FROM points WHERE point IN ({marks})",
                wanted,
            ).fetchone()
        return int(row[0])

    def export_canonical(self, index: int) -> bytes:
        spec, _ = self._read_experiment()
        _, campaign_spec = spec.expanded()[index]
        rows = self._point_rows()
        header = rows[index][0] if index in rows else campaign_spec.to_dict()
        records = {
            trial: json.loads(record)
            for trial, record in self._connect().execute(
                "SELECT trial, record FROM trials WHERE point = ?", (index,)
            )
        }
        return canonical_record_bytes(header, records)
