"""Migrate results between store backends: ``repro store convert``.

Conversion is a replay through the public store API, so it works on finished
*and* partially-complete runs: the destination gets the source's experiment
manifest, every committed record (under the source's own per-point run
headers, which carry adaptive stop counts), the complete/partial state of
each point, and the latest progress snapshot.  A partial run converted to
the other backend therefore resumes exactly where the original left off.

Converting *to* jsonl writes each point's canonical export bytes verbatim --
byte-identical to what a ``--store jsonl`` run of the same spec would have
left on disk -- which doubles as the canonical-bytes export path the CI
parity leg compares against a serial JSONL run.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.store.base import DEFAULT_STORE, ResultsStore, get_store, open_store


def default_convert_path(src: str | Path, to: str) -> Path:
    """The destination a ``--to`` conversion lands on when ``--out`` is omitted.

    ``*.jsonl``/sweep-directory sources become ``<name>.db``; a database
    source becomes ``<stem>.jsonl`` for a campaign or a ``<stem>`` directory
    for a sweep (decided later from the stored spec, so this returns the
    stem and :func:`convert_store` appends the suffix for campaigns).
    """
    src = Path(src)
    if to == "sqlite":
        name = src.name[: -len(".jsonl")] if src.name.endswith(".jsonl") else src.name
        return src.with_name(name + ".db")
    name = src.name[: -len(".db")] if src.name.endswith(".db") else src.name
    return src.with_name(name)


def convert_store(
    src: str | Path, to: str, out: str | Path | None = None
) -> tuple[Path, int]:
    """Convert a results path to another backend; ``(destination, records)``.

    Raises ``ValueError`` on an unknown backend, a source that cannot be
    read, or a destination that already holds a different experiment.
    """
    src = Path(src)
    source = open_store(src)
    if source.name == to:
        raise ValueError(f"{src} already uses the {to!r} results store")
    view = source.load_view()

    dest_path = Path(out) if out is not None else default_convert_path(src, to)
    if to == DEFAULT_STORE and not view.spec.is_sweep and dest_path.suffix != ".jsonl":
        dest_path = dest_path.with_name(dest_path.name + ".jsonl")
    if dest_path.resolve() == src.resolve():
        raise ValueError(f"conversion destination {dest_path} is the source itself")

    dest: ResultsStore = get_store(to)(dest_path, spec=view.spec)
    dest.validate_layout()
    dest.prepare()
    total = 0
    try:
        for point_view in view.points:
            if point_view.n_done == 0:
                continue
            records = source.point_records(point_view.index)
            # The source's own header spec drives the destination handle, so
            # adaptive stop counts and resume identity carry over verbatim.
            _, campaign_spec = view.spec.expanded()[point_view.index]
            handle = dest.point_store(point_view.index, campaign_spec, point_view.spec)
            handle.open(header=True)
            try:
                for trial in sorted(records.records):
                    handle.append(trial, records.records[trial])
                    total += 1
            finally:
                handle.close()
            if point_view.complete:
                handle.write_canonical(records.ordered())
        if view.progress is not None:
            dest.persist_progress(view.progress)
    finally:
        dest.close()
        source.close()
    return dest_path, total
