"""The ``"jsonl"`` results store: the historical on-disk layout, byte-exact.

This backend *is* the format every executor backend has always written -- a
single checkpoint JSONL file for a campaign, a directory of
``NNN-<label>.jsonl`` files plus an ``experiment.json`` manifest for a sweep,
and a ``<results>.progress.json`` sidecar carrying an interrupted campaign's
completion snapshot.  The write path delegates to
:class:`~repro.exec.checkpoint.TrialCheckpoint` unchanged, so committed
checkpoints, goldens and the cross-backend byte-parity suites are untouched
by the store refactor: a ``--store jsonl`` run produces the same bytes the
engine produced before stores existed.

The manifest/sidecar helpers (:data:`MANIFEST_NAME`,
:func:`progress_sidecar_path`, :func:`read_manifest`) moved here from
``repro.exec.engine``, which re-exports them for compatibility.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path
from typing import Iterator, Sequence

from repro.exec.checkpoint import (
    TrialCheckpoint,
    TrialRecord,
    campaign_results_path,
    parse_results_text,
)
from repro.exec.results import TrialRecordSet
from repro.exec.spec import ExperimentSpec
from repro.fault.runner import CampaignSpec, _canonical_json
from repro.store.base import (  # noqa: F401  (manifest helpers re-exported)
    MANIFEST_NAME,
    PointView,
    ResultsStore,
    StoreView,
    experiment_resume_key,
    progress_sidecar_path,
    read_manifest,
    register_store,
)


def canonical_record_bytes(spec_dict: dict, records: dict[int, TrialRecord]) -> bytes:
    """Checkpoint-JSONL bytes of one point: header + trial-sorted records.

    ``spec_dict`` is emitted verbatim as the header -- callers pass the
    stored run header, whose ``n_trials`` already reflects the point's truth
    (the adaptive stop count once complete, the running cap while
    in-flight).  For a complete point this reproduces
    :meth:`TrialCheckpoint.write_canonical` byte-for-byte, which is what the
    cross-backend parity checks compare.
    """
    lines = [_canonical_json({"spec": spec_dict})]
    lines += [
        _canonical_json({"trial": i, "record": records[i]}) for i in sorted(records)
    ]
    return ("\n".join(lines) + "\n").encode()


@register_store("jsonl")
class JsonlStore(ResultsStore):
    """The default store: per-point JSONL checkpoints, manifest, sidecar."""

    # ------------------------------------------------------------------ #
    # Write lifecycle
    # ------------------------------------------------------------------ #
    def validate_layout(self) -> None:
        if self.spec is None:
            return
        if self.spec.is_sweep and self.path.is_file():
            raise ValueError(
                f"results path {self.path} is a file, but a sweep "
                "checkpoints into a directory of per-point JSONL files"
            )
        if not self.spec.is_sweep and self.path.is_dir():
            raise ValueError(
                f"results path {self.path} is a directory, but a "
                "campaign checkpoints into a single JSONL file"
            )
        if not self.spec.is_sweep:
            self._drop_stale_sidecar()

    def _drop_stale_sidecar(self) -> None:
        """Unlink a sidecar left by a *different* experiment's aborted run.

        An abort deliberately leaves the sidecar (it is the interrupted-run
        marker ``repro report`` reads), but once a fresh run reuses the same
        results path for another spec the old snapshot would be reported as
        this run's progress.  The sidecar is dropped only when no results
        file exists: with records on disk the sidecar describes them, and a
        spec mismatch is :meth:`TrialCheckpoint.load`'s refusal to make.
        """
        sidecar = progress_sidecar_path(self.path)
        if self.path.exists() or not sidecar.exists():
            return
        try:
            stored = ExperimentSpec.from_dict(json.loads(sidecar.read_text())["spec"])
        except (ValueError, KeyError, TypeError):
            sidecar.unlink(missing_ok=True)  # torn snapshot: no run to describe
            return
        if experiment_resume_key(stored) != experiment_resume_key(self.spec):
            sidecar.unlink(missing_ok=True)

    def prepare(self) -> None:
        if self.spec is None or not self.spec.is_sweep:
            return
        manifest = self.path / MANIFEST_NAME
        if manifest.exists():
            existing, _ = read_manifest(manifest)
            if experiment_resume_key(existing) != experiment_resume_key(self.spec):
                raise ValueError(
                    f"{manifest} describes a different experiment; refusing "
                    "to mix results of two sweeps in one directory"
                )
            return
        self.path.mkdir(parents=True, exist_ok=True)
        manifest.write_text(self.spec.to_json() + "\n")

    def point_store(
        self, index: int, spec: CampaignSpec, run_spec: CampaignSpec
    ) -> TrialCheckpoint:
        return TrialCheckpoint(run_spec, self._point_path(self.spec, index, spec))

    def persist_progress(self, snapshot: dict) -> None:
        """Atomically refresh the persisted ``progress`` completion snapshot.

        The snapshot holds counts only (no wall-clock timing), so the
        persisted state of a finished run is byte-identical across backends
        and interruption histories.  Sweeps keep it inside the
        ``experiment.json`` manifest; a single campaign has no manifest, so
        its snapshot goes into a ``<results>.progress.json`` sidecar.
        """
        if self.spec is None:
            return
        if self.spec.is_sweep:
            target = self.path / MANIFEST_NAME
            payload = dict(self.spec.to_dict())
            payload["progress"] = snapshot
        else:
            target = progress_sidecar_path(self.path)
            payload = {"spec": self.spec.to_dict(), "progress": snapshot}
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(_canonical_json(payload) + "\n")
        os.replace(tmp, target)

    def finalize(self) -> None:
        # The run completed: the JSONL file is the whole truth now, so the
        # interrupted-run sidecar comes off (its presence is the marker
        # `repro report` uses for "this run never finished").
        if self.spec is not None and not self.spec.is_sweep:
            progress_sidecar_path(self.path).unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def _point_path(
        self, spec: ExperimentSpec | None, index: int, campaign_spec: CampaignSpec
    ) -> Path:
        if spec is not None and spec.is_sweep:
            return campaign_results_path(self.path, index, campaign_spec)
        return self.path

    def _read_experiment(self) -> tuple[ExperimentSpec, dict | None]:
        """The stored experiment spec and latest progress snapshot."""
        if self.spec is not None:
            return self.spec, None
        if self.path.is_dir():
            manifest = self.path / MANIFEST_NAME
            if not manifest.exists():
                raise ValueError(
                    f"results directory {self.path} has no {MANIFEST_NAME} "
                    "manifest; run the sweep through `repro run --results` first"
                )
            return read_manifest(manifest)
        sidecar = progress_sidecar_path(self.path)
        progress = None
        if sidecar.exists():
            try:
                progress = json.loads(sidecar.read_text()).get("progress")
            except ValueError:
                progress = None  # a torn sidecar must not break reads
        if self.path.exists():
            spec_dict, _ = parse_results_text(self.path.read_text())
            if spec_dict is not None:
                return ExperimentSpec.from_dict(spec_dict), progress
        if sidecar.exists():
            data = json.loads(sidecar.read_text())
            return ExperimentSpec.from_dict(data["spec"]), data.get("progress")
        raise ValueError(f"results path {self.path} does not exist")

    def _point_state(
        self, spec: ExperimentSpec, index: int, campaign_spec: CampaignSpec
    ) -> tuple[CampaignSpec, dict | None, dict[int, TrialRecord]]:
        """``(header-trusting spec, header dict or None, records)`` of a point.

        The file's own header decides the trial count: an adaptive run stops
        a point early (or tops it up past the sweep's ``n_trials``) and
        rewrites the header to the count actually on disk, while the
        manifest spec still carries the initial count.
        """
        path = self._point_path(spec, index, campaign_spec)
        if not path.exists():
            return campaign_spec, None, {}
        spec_dict, records = parse_results_text(path.read_text())
        point_spec = campaign_spec
        if spec_dict is not None and isinstance(spec_dict.get("n_trials"), int):
            point_spec = replace(campaign_spec, n_trials=spec_dict["n_trials"])
        return point_spec, spec_dict, records

    def load_view(self) -> StoreView:
        spec, progress = self._read_experiment()
        points = []
        for index, (point, campaign_spec) in enumerate(spec.expanded()):
            point_spec, _, records = self._point_state(spec, index, campaign_spec)
            points.append(
                PointView(index=index, point=point, spec=point_spec, n_done=len(records))
            )
        return StoreView(spec=spec, points=points, progress=progress)

    def point_records(self, index: int) -> TrialRecordSet:
        spec, _ = self._read_experiment()
        _, campaign_spec = spec.expanded()[index]
        point_spec, _, records = self._point_state(spec, index, campaign_spec)
        return TrialRecordSet(spec=point_spec, records=records)

    def iter_records(
        self, indices: Sequence[int] | None = None
    ) -> Iterator[tuple[int, int, TrialRecord]]:
        spec, _ = self._read_experiment()
        expanded = spec.expanded()
        wanted = range(len(expanded)) if indices is None else indices
        # One point's records in memory at a time: bounded by the largest
        # point, not the experiment.
        for index in wanted:
            _, _, records = self._point_state(spec, index, expanded[index][1])
            for trial in sorted(records):
                yield index, trial, records[trial]

    def count_records(self, indices: Sequence[int] | None = None) -> int:
        return sum(1 for _ in self.iter_records(indices))

    def export_canonical(self, index: int) -> bytes:
        spec, _ = self._read_experiment()
        _, campaign_spec = spec.expanded()[index]
        point_spec, spec_dict, records = self._point_state(spec, index, campaign_spec)
        header = spec_dict if spec_dict is not None else point_spec.to_dict()
        return canonical_record_bytes(header, records)
