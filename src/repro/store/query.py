"""Filtered record streaming over any results store: the ``repro query`` core.

A :class:`QueryFilter` splits into two layers that map onto the store API:

* **point-level** filters (``campaign``, ``point``, ``scheme``,
  ``fault_model``) are decided against the counts-only
  :class:`~repro.store.base.StoreView`, shrinking the set of grid points
  *before* any record is read -- on the sqlite backend that turns into an
  indexed ``WHERE point IN (...)``;
* **record-level** filters (``detected``) stream through
  :meth:`~repro.store.base.ResultsStore.iter_records`, so memory stays
  bounded however many records match.

Counting takes the indexed :meth:`count_records` fast path whenever no
record-level filter is set.  Everything works identically on a finished run
and on a partially-complete (killed) one: only committed records are stored,
so they are exactly what streams back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exec.checkpoint import TrialRecord
from repro.store.base import PointView, ResultsStore

#: ``fault_model`` campaigns default to single-event upsets when the param
#: is absent, so a ``--fault-model seu`` query matches them too.
DEFAULT_FAULT_MODEL = "seu"


@dataclass(frozen=True)
class QueryFilter:
    """Record predicate of one ``repro query`` invocation (None = any)."""

    campaign: str | None = None
    point: int | None = None
    scheme: str | None = None
    fault_model: str | None = None
    detected: bool | None = None

    @property
    def record_level(self) -> bool:
        """Whether any filter must inspect individual records."""
        return self.detected is not None

    # ------------------------------------------------------------------ #
    def match_point(self, view: PointView) -> bool:
        """Whether a grid point can contribute records at all."""
        if self.point is not None and view.index != self.point:
            return False
        spec = view.spec
        if self.campaign is not None and not (
            self.campaign == spec.campaign or self.campaign in spec.label
        ):
            return False
        if self.scheme is not None and spec.params.get("scheme") != self.scheme:
            return False
        if (
            self.fault_model is not None
            and spec.params.get("fault_model", DEFAULT_FAULT_MODEL) != self.fault_model
        ):
            return False
        return True

    def match_record(self, record: TrialRecord) -> bool:
        if self.detected is not None and bool(record.get("detected")) != self.detected:
            return False
        return True


def select_points(store: ResultsStore, flt: QueryFilter) -> list[int]:
    """Grid-point indices surviving the point-level filters."""
    return [p.index for p in store.load_view().points if flt.match_point(p)]


def query_records(
    store: ResultsStore, flt: QueryFilter, limit: int | None = None
) -> Iterator[tuple[int, int, TrialRecord]]:
    """Stream the matching ``(point, trial, record)`` triples, bounded memory."""
    emitted = 0
    for point, trial, record in store.iter_records(select_points(store, flt)):
        if not flt.match_record(record):
            continue
        yield point, trial, record
        emitted += 1
        if limit is not None and emitted >= limit:
            return


def count_query(store: ResultsStore, flt: QueryFilter) -> int:
    """Matching record count; indexed (no record reads) when possible."""
    indices = select_points(store, flt)
    if not flt.record_level:
        return store.count_records(indices)
    return sum(
        1 for _, _, record in store.iter_records(indices) if flt.match_record(record)
    )
