"""Thread/data ownership maps for Tensor-Core MMA instructions.

Section 3.3 of the paper derives the strided tensor-checksum design from the
register layout of the ``SM80_16x8x16_F32F16F16F32_TN`` MMA atom and the
64x16x16 TiledMMA built from it: along the output's N dimension, elements 8
apart live in the same thread; along the M dimension the same-thread stride is
64 (one full TiledMMA tile).  A checksum that folds elements at exactly those
strides can therefore be encoded, verified and corrected without any
inter-thread communication.

This module reproduces those ownership maps so the checksum design can be
*validated* against them (see ``tests/gemm/test_mma.py``) rather than merely
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MMAAtomLayout:
    """Ownership map of a single warp-level MMA atom.

    The default parameters describe ``SM80_16x8x16_F32F16F16F32_TN``: a warp
    of 32 threads multiplying a 16x16 FP16 A fragment by a 16x8 FP16 B
    fragment into a 16x8 FP32 C fragment.
    """

    m: int = 16
    n: int = 8
    k: int = 16
    warp_size: int = 32

    def a_owner(self, row: int, col: int) -> tuple[int, int]:
        """Owning (lane, register) of element ``A[row][col]`` of the atom.

        The A fragment is distributed as four 8x8 sub-tiles; within each
        sub-tile element ``(r, c)`` lives in lane ``r*4 + c//2`` register
        ``c % 2`` (PTX ``mma.sync.aligned.m16n8k16`` operand A layout).
        """
        self._check(row, col, self.m, self.k)
        r, c = row % 8, col % 8
        sub = 2 * (row // 8) + (col // 8)
        return r * 4 + c // 2, 2 * sub + (c % 2)

    def b_owner(self, row: int, col: int) -> tuple[int, int]:
        """Owning (lane, register) of element ``B[row][col]`` (K x N) of the atom."""
        self._check(row, col, self.k, self.n)
        r, c = row % 8, col
        sub = row // 8
        return c * 4 + r // 2, 2 * sub + (r % 2)

    def c_owner(self, row: int, col: int) -> tuple[int, int]:
        """Owning (lane, register) of accumulator element ``C[row][col]``.

        Rows 0-7 map to registers {0, 1}, rows 8-15 to registers {2, 3}; the
        lane depends only on ``row % 8`` and ``col // 2``, which is what makes
        the N-direction stride-8 fold intra-thread once the atom is repeated
        along N.
        """
        self._check(row, col, self.m, self.n)
        lane = (row % 8) * 4 + col // 2
        reg = 2 * (row // 8) + (col % 2)
        return lane, reg

    @staticmethod
    def _check(row: int, col: int, rows: int, cols: int) -> None:
        if not (0 <= row < rows and 0 <= col < cols):
            raise IndexError(f"element ({row}, {col}) outside {rows}x{cols} fragment")


#: The MMA atom used by the paper's kernels.
SM80_16x8x16 = MMAAtomLayout()


@dataclass(frozen=True)
class TiledMMALayout:
    """Ownership map of a TiledMMA built by replicating an MMA atom.

    The EFTA kernel uses four warps stacked along M (64 rows) and covers the
    block's N extent by iterating the 8-wide atom (value replication along N),
    giving the 64x16x16 TiledMMA of Figure 7.  Larger block extents are
    covered by repeating the TiledMMA tile, so ownership is periodic with the
    tile shape.
    """

    atom: MMAAtomLayout = SM80_16x8x16
    warps_m: int = 4
    atom_iters_n: int = 2

    @property
    def tile_m(self) -> int:
        """Rows of the output covered by one TiledMMA tile."""
        return self.atom.m * self.warps_m

    @property
    def tile_n(self) -> int:
        """Columns of the output covered by one TiledMMA tile."""
        return self.atom.n * self.atom_iters_n

    @property
    def threads(self) -> int:
        """Number of threads cooperating on one TiledMMA tile."""
        return self.warps_m * self.atom.warp_size

    def c_owner_thread(self, row: int, col: int) -> int:
        """Global thread id owning output element ``(row, col)``.

        Coordinates may exceed one tile; ownership repeats with period
        ``tile_m`` along rows and ``atom.n`` along columns (column iterations
        of the atom reuse the same threads).
        """
        if row < 0 or col < 0:
            raise IndexError("negative output coordinates")
        r = row % self.tile_m
        warp = r // self.atom.m
        lane, _ = self.atom.c_owner(r % self.atom.m, col % self.atom.n)
        return warp * self.atom.warp_size + lane

    def same_thread_column_stride(self) -> int:
        """Smallest positive column stride guaranteed to stay in one thread.

        This is the stride of the row-wise tensor checksum (Equation 12):
        folding output columns ``j, j+s, j+2s, ...`` is an intra-thread
        accumulation.
        """
        return self.atom.n

    def same_thread_row_stride(self) -> int:
        """Smallest positive row stride guaranteed to stay in one thread.

        Folding rows requires a stride of one full TiledMMA tile (64), which
        is why the column-checksum variant costs ~8x the memory of the
        row-checksum variant and the paper adopts a row-checksum-only design.
        """
        return self.tile_m

    def is_intra_thread_fold(self, stride: int, axis: str, extent: int = 256) -> bool:
        """Check whether folding at ``stride`` along ``axis`` never crosses threads.

        Parameters
        ----------
        stride:
            Fold stride to test.
        axis:
            ``"rows"`` or ``"cols"`` of the output tile.
        extent:
            How far to scan when validating the property.
        """
        if axis not in ("rows", "cols"):
            raise ValueError("axis must be 'rows' or 'cols'")
        for base in range(min(stride, extent)):
            owners = set()
            pos = base
            while pos < extent:
                if axis == "cols":
                    owners.add(self.c_owner_thread(0, pos))
                else:
                    owners.add(self.c_owner_thread(pos, 0))
                pos += stride
            if len(owners) > 1:
                return False
        return True


#: The TiledMMA configuration used by the EFTA kernel (Figure 7).
EFTA_TILED_MMA = TiledMMALayout()
