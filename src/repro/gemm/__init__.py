"""Tensor-Core GEMM substrate: MMA thread/data layout, blocked FP16 GEMM, checksums.

This package rebuilds the pieces of the paper's Section 3.3 that live below
the attention kernel:

* :mod:`repro.gemm.mma` -- the thread-to-data ownership maps of the
  ``SM80_16x8x16_F32F16F16F32_TN`` MMA atom and the 64x16x16 TiledMMA used by
  EFTA.  The strided checksum design is derived from (and validated against)
  these maps.
* :mod:`repro.gemm.checksum` -- traditional element-wise ABFT checksums
  (Huang & Abraham) and the paper's strided tensor checksums, each with
  encode / verify / locate / correct operations.
* :mod:`repro.gemm.tiled_gemm` -- blocked mixed-precision GEMM with optional
  per-block fault injection, the compute primitive shared by the decoupled
  baseline and EFTA.
"""

from repro.gemm.mma import MMAAtomLayout, SM80_16x8x16, TiledMMALayout, EFTA_TILED_MMA
from repro.gemm.checksum import (
    ChecksumVerdict,
    encode_column_checksums,
    encode_row_checksums,
    encode_strided_row_checksums,
    strided_sums,
    verify_column_checksums,
    verify_row_checksums,
    verify_strided_checksums,
)
from repro.gemm.tiled_gemm import blocked_matmul, iter_tiles

__all__ = [
    "MMAAtomLayout",
    "SM80_16x8x16",
    "TiledMMALayout",
    "EFTA_TILED_MMA",
    "ChecksumVerdict",
    "encode_column_checksums",
    "encode_row_checksums",
    "encode_strided_row_checksums",
    "strided_sums",
    "verify_column_checksums",
    "verify_row_checksums",
    "verify_strided_checksums",
    "blocked_matmul",
    "iter_tiles",
]
