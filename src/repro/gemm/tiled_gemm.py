"""Blocked mixed-precision GEMM, the compute primitive of both attention pipelines.

The CUDA kernels tile their GEMMs over thread blocks; here the same tiling is
reproduced with NumPy sub-matrix products so that (a) fault injection can
target an individual block / element exactly like a faulty MMA would, and
(b) the block structure matches the checksum granularity of
:mod:`repro.gemm.checksum`.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.fp.float16 import fp16_matmul


def iter_tiles(rows: int, cols: int, tile_rows: int, tile_cols: int) -> Iterator[tuple[slice, slice]]:
    """Yield (row slice, col slice) pairs covering a ``rows x cols`` matrix."""
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile sizes must be positive")
    for r0 in range(0, rows, tile_rows):
        for c0 in range(0, cols, tile_cols):
            yield slice(r0, min(r0 + tile_rows, rows)), slice(c0, min(c0 + tile_cols, cols))


def blocked_matmul(
    a: np.ndarray,
    b: np.ndarray,
    tile_m: int = 128,
    tile_n: int = 128,
    mixed_precision: bool = True,
    tile_hook: Callable[[np.ndarray, slice, slice], None] | None = None,
) -> np.ndarray:
    """Compute ``a @ b`` tile by tile, optionally corrupting tiles via a hook.

    Parameters
    ----------
    a, b:
        2-D operands (M x K) and (K x N).
    tile_m, tile_n:
        Output tile shape processed per step (one simulated CTA's workload).
    mixed_precision:
        Use FP16 operands with FP32 accumulation (Tensor-Core numerics); when
        False the multiply runs in the operands' own precision.
    tile_hook:
        Optional callable invoked as ``hook(tile, row_slice, col_slice)``
        after each tile is computed and before it is stored; the fault
        injector uses this to flip bits in freshly produced results, i.e. a
        computing-unit fault rather than a memory fault.

    Returns
    -------
    np.ndarray
        The product in float32.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("blocked_matmul expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    m, n = a.shape[0], b.shape[1]
    out = np.empty((m, n), dtype=np.float32)
    for rs, cs in iter_tiles(m, n, tile_m, tile_n):
        if mixed_precision:
            tile = fp16_matmul(a[rs, :], b[:, cs])
        else:
            tile = np.matmul(a[rs, :], b[:, cs]).astype(np.float32)
        if tile_hook is not None:
            tile_hook(tile, rs, cs)
        out[rs, cs] = tile
    return out
