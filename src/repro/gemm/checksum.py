"""ABFT checksum encodings: traditional element-wise and strided tensor checksums.

Two families are implemented:

* **Traditional (Huang & Abraham) checksums** (Equations 8-9): the operand
  matrices are augmented with full-width row/column checksum vectors using the
  weights ``[1, 1, ..., 1]`` and ``[1, 2, ..., M]``; a single error in the
  product is located by the ratio of the two residuals and corrected by adding
  the unweighted residual back.
* **Strided tensor checksums** (Equations 12-15): the operand is folded at the
  same-thread stride of the TiledMMA layout (8 along the output's N
  dimension), producing an 8-column-wide checksum per block.  Each of the 8
  checksum columns protects an interleaved subset of the output columns, so up
  to 8 errors per row are correctable as long as no two fall in the same
  stride class -- the "up to a factor of 8" coverage improvement of §3.3.

All verification routines return a :class:`ChecksumVerdict` describing what
was detected, what was corrected, and what could not be corrected, and they
correct the output **in place** (mirroring the in-register correction of the
CUDA kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Correction:
    """One applied (or attempted) correction."""

    row: int
    col: int
    delta: float


@dataclass
class ChecksumVerdict:
    """Outcome of a checksum verification pass."""

    detected: int = 0
    corrections: list[Correction] = field(default_factory=list)
    uncorrectable: int = 0
    max_residual: float = 0.0

    @property
    def corrected(self) -> int:
        """Number of corrections applied."""
        return len(self.corrections)

    @property
    def clean(self) -> bool:
        """True if no mismatch exceeded the threshold."""
        return self.detected == 0

    def merge(self, other: "ChecksumVerdict") -> "ChecksumVerdict":
        """Accumulate another verdict into this one and return ``self``."""
        self.detected += other.detected
        self.corrections.extend(other.corrections)
        self.uncorrectable += other.uncorrectable
        self.max_residual = max(self.max_residual, other.max_residual)
        return self


# --------------------------------------------------------------------------- #
# Traditional (element-wise) checksums, Equations (8) and (9)
# --------------------------------------------------------------------------- #
def column_weights(m: int, dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
    """Column checksum weight vectors ``c1 = 1`` and ``c2 = [1..M]``."""
    return np.ones(m, dtype=dtype), np.arange(1, m + 1, dtype=dtype)


def row_weights(n: int, dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
    """Row checksum weight vectors ``r1 = 1`` and ``r2 = [1..N]``."""
    return np.ones(n, dtype=dtype), np.arange(1, n + 1, dtype=dtype)


def encode_column_checksums(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode the two column-checksum rows ``c1 A`` and ``c2 A`` of ``A`` (M x K)."""
    a = np.asarray(a, dtype=np.float32)
    c1, c2 = column_weights(a.shape[0])
    return c1 @ a, c2 @ a


def encode_row_checksums(b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode the two row-checksum columns ``B r1`` and ``B r2`` of ``B`` (K x N)."""
    b = np.asarray(b, dtype=np.float32)
    r1, r2 = row_weights(b.shape[1])
    return b @ r1, b @ r2


def _threshold(magnitude: np.ndarray, atol: float, rtol: float) -> np.ndarray:
    """Detection threshold: absolute floor plus a fraction of the accumulated magnitude.

    Checksums are signed sums and can cancel to near zero even when the
    accumulated values are large, so thresholds must be relative to the sum of
    *absolute* values that went into the checksum -- otherwise FP16 round-off
    triggers false alarms on near-zero checksums (cf. Figure 12's false-alarm
    analysis).
    """
    return atol + rtol * np.abs(magnitude)


def verify_column_checksums(
    c: np.ndarray,
    c_check1: np.ndarray,
    c_check2: np.ndarray,
    atol: float = 1e-3,
    rtol: float = 0.0,
) -> ChecksumVerdict:
    """Verify/correct ``C`` (M x N) against column checksums of shape (N,).

    ``c_check1``/``c_check2`` are the checksum rows produced by multiplying the
    encoded operand (``c1 A`` and ``c2 A``) with B.  A single corrupted element
    per column is located via the residual ratio and corrected in place.
    """
    c = np.asarray(c)
    sum1 = c.sum(axis=0, dtype=np.float64)
    sum2 = (np.arange(1, c.shape[0] + 1, dtype=np.float64)[:, None] * c).sum(axis=0)
    res1 = np.asarray(c_check1, dtype=np.float64) - sum1
    res2 = np.asarray(c_check2, dtype=np.float64) - sum2
    verdict = ChecksumVerdict()
    verdict.max_residual = float(np.max(np.abs(res1))) if res1.size else 0.0
    magnitude = np.abs(c).sum(axis=0, dtype=np.float64)
    thresh = _threshold(magnitude, atol, rtol)
    bad_cols = np.nonzero(np.abs(res1) > thresh)[0]
    verdict.detected = int(bad_cols.size)
    for j in bad_cols:
        if abs(res1[j]) < np.finfo(np.float64).tiny:
            verdict.uncorrectable += 1
            continue
        row_f = res2[j] / res1[j]
        row = int(round(row_f)) - 1
        if not 0 <= row < c.shape[0] or abs(row_f - round(row_f)) > 0.25:
            verdict.uncorrectable += 1
            continue
        delta = res1[j]
        c[row, j] += delta
        verdict.corrections.append(Correction(row=row, col=int(j), delta=float(delta)))
    return verdict


def verify_row_checksums(
    c: np.ndarray,
    r_check1: np.ndarray,
    r_check2: np.ndarray,
    atol: float = 1e-3,
    rtol: float = 0.0,
) -> ChecksumVerdict:
    """Verify/correct ``C`` (M x N) against row checksums of shape (M,)."""
    c = np.asarray(c)
    sum1 = c.sum(axis=1, dtype=np.float64)
    sum2 = (c * np.arange(1, c.shape[1] + 1, dtype=np.float64)[None, :]).sum(axis=1)
    res1 = np.asarray(r_check1, dtype=np.float64) - sum1
    res2 = np.asarray(r_check2, dtype=np.float64) - sum2
    verdict = ChecksumVerdict()
    verdict.max_residual = float(np.max(np.abs(res1))) if res1.size else 0.0
    magnitude = np.abs(c).sum(axis=1, dtype=np.float64)
    thresh = _threshold(magnitude, atol, rtol)
    bad_rows = np.nonzero(np.abs(res1) > thresh)[0]
    verdict.detected = int(bad_rows.size)
    for i in bad_rows:
        if abs(res1[i]) < np.finfo(np.float64).tiny:
            verdict.uncorrectable += 1
            continue
        col_f = res2[i] / res1[i]
        col = int(round(col_f)) - 1
        if not 0 <= col < c.shape[1] or abs(col_f - round(col_f)) > 0.25:
            verdict.uncorrectable += 1
            continue
        delta = res1[i]
        c[i, col] += delta
        verdict.corrections.append(Correction(row=int(i), col=col, delta=float(delta)))
    return verdict


# --------------------------------------------------------------------------- #
# Strided tensor checksums, Equations (12)-(15)
# --------------------------------------------------------------------------- #
def _num_groups(cols: int, stride: int) -> int:
    return -(-cols // stride)


def encode_strided_row_checksums(
    kt: np.ndarray, stride: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Encode the two strided (tensor) row checksums of ``K^T`` (d x Bc).

    The columns of ``K^T`` are folded in groups of ``stride``:
    ``checksum1[:, j] = sum_l K^T[:, j + l*stride]`` and ``checksum2`` uses the
    group weight ``l + 1``.  Columns beyond the matrix extent contribute zero
    (equivalent to zero-padding the block, as the kernel does for ragged
    tails).
    """
    kt = np.asarray(kt, dtype=np.float32)
    cols = kt.shape[-1]
    groups = _num_groups(cols, stride)
    # Any number of leading dims is supported (a stacked trial axis folds the
    # same groups per slice); the fold is elementwise per column group, so the
    # stacked result's slices are bitwise the 2D encodings.
    check1 = np.zeros(kt.shape[:-1] + (stride,), dtype=np.float32)
    check2 = np.zeros(kt.shape[:-1] + (stride,), dtype=np.float32)
    for l in range(groups):
        chunk = kt[..., l * stride : (l + 1) * stride]
        width = chunk.shape[-1]
        check1[..., :width] += chunk
        check2[..., :width] += np.float32(l + 1) * chunk
    return check1, check2


def strided_sums(s: np.ndarray, stride: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """Strided column sums of ``S`` (Br x Bc) matching the tensor checksums.

    Returns ``(sum1, sum2)`` of shape (Br, stride): ``sum1[i, j] =
    sum_l S[i, j + l*stride]`` and ``sum2`` with weight ``l + 1``.
    """
    s = np.asarray(s)
    cols = s.shape[-1]
    groups = _num_groups(cols, stride)
    # Leading dims beyond the row axis (e.g. a stacked trial axis) broadcast
    # through unchanged: the accumulation per slice is the 2D accumulation.
    sum1 = np.zeros(s.shape[:-1] + (stride,), dtype=np.float64)
    sum2 = np.zeros(s.shape[:-1] + (stride,), dtype=np.float64)
    for l in range(groups):
        chunk = s[..., l * stride : (l + 1) * stride].astype(np.float64)
        width = chunk.shape[-1]
        sum1[..., :width] += chunk
        sum2[..., :width] += (l + 1) * chunk
    return sum1, sum2


def verify_strided_checksums(
    s: np.ndarray,
    s_check1: np.ndarray,
    s_check2: np.ndarray,
    stride: int = 8,
    atol: float = 1e-2,
    rtol: float = 0.0,
    magnitude: np.ndarray | None = None,
) -> ChecksumVerdict:
    """Verify/correct ``S`` against its strided tensor checksums, in place.

    ``s_check1``/``s_check2`` are the (Br x stride) checksums produced by the
    checksum GEMM (Equations 14-15).  For every (row, stride-class) whose
    residual exceeds the threshold, the offending group index is recovered
    from the residual ratio and the element ``S[row, class + stride*group]``
    is corrected by the unweighted residual.  Errors in different stride
    classes of the same row are corrected independently, which is the source
    of the coverage advantage over single-column checksums.

    ``magnitude`` optionally overrides the per-class reference magnitude the
    relative threshold is taken against.  By default it is the strided sum of
    ``|S|`` itself, which is correct when ``S`` was computed in one GEMM; a
    running accumulator (the attention output) can cancel to near zero while
    the values folded into it stay O(1), in which case the caller must supply
    the accumulated magnitude to keep round-off below threshold.
    """
    s = np.asarray(s)
    rows, cols = s.shape
    groups = _num_groups(cols, stride)
    verdict = ChecksumVerdict()

    # Non-finite elements (a bit flip can turn an FP16 value into NaN/Inf)
    # poison every sum they touch, so they are repaired first: with a single
    # corrupted element per stride class, the correct value is the checksum
    # minus the sum of the remaining (finite) elements of that class.
    nonfinite = ~np.isfinite(s)
    if nonfinite.any():
        check1 = np.asarray(s_check1, dtype=np.float64)
        for i, j in np.argwhere(nonfinite):
            cls = j % stride
            class_cols = np.arange(cls, cols, stride)
            others = class_cols[class_cols != j]
            if np.all(np.isfinite(s[i, others])):
                verdict.detected += 1
                repaired = check1[i, cls] - float(np.sum(s[i, others], dtype=np.float64))
                delta = repaired - float(s[i, j]) if np.isfinite(s[i, j]) else float("nan")
                s[i, j] = repaired
                verdict.corrections.append(Correction(row=int(i), col=int(j), delta=delta))
            else:
                verdict.detected += 1
                verdict.uncorrectable += 1

    sum1, sum2 = strided_sums(s, stride)
    res1 = np.asarray(s_check1, dtype=np.float64) - sum1
    res2 = np.asarray(s_check2, dtype=np.float64) - sum2
    verdict.max_residual = float(np.max(np.abs(res1))) if res1.size else 0.0
    if magnitude is None:
        magnitude, _ = strided_sums(np.abs(s), stride)
    else:
        magnitude = np.maximum(np.asarray(magnitude, dtype=np.float64), strided_sums(np.abs(s), stride)[0])
    thresh = _threshold(magnitude, atol, rtol)
    bad = np.argwhere(np.abs(res1) > thresh)
    # Add to (not overwrite) the detections already recorded by the
    # non-finite repair above: a repaired NaN no longer exceeds the threshold
    # here, but it was detected.
    verdict.detected += int(bad.shape[0])
    for i, j in bad:
        if abs(res1[i, j]) < np.finfo(np.float64).tiny:
            verdict.uncorrectable += 1
            continue
        group_f = res2[i, j] / res1[i, j]
        group = int(round(group_f)) - 1
        col = j + stride * group
        if not 0 <= group < groups or col >= cols or abs(group_f - round(group_f)) > 0.25:
            verdict.uncorrectable += 1
            continue
        delta = res1[i, j]
        s[i, col] += delta
        verdict.corrections.append(Correction(row=int(i), col=int(col), delta=float(delta)))
    return verdict


def verify_strided_checksums_stacked(
    s: np.ndarray,
    s_check1: np.ndarray,
    s_check2: np.ndarray,
    stride: int = 8,
    atol: float = 1e-2,
    rtol: float = 0.0,
    magnitude: np.ndarray | None = None,
) -> list[ChecksumVerdict]:
    """Per-trial verify/correct of a stacked ``S`` (T x Br x Bc), in place.

    Detection runs once over the stacked residuals (the float64 strided sums
    of a stacked array are bitwise the per-slice 2D sums).  A trial that is
    entirely finite with every residual under threshold gets a synthesized
    clean verdict -- bitwise what :func:`verify_strided_checksums` returns
    when it corrects nothing, without re-touching ``S``.  Every flagged trial
    falls back to the scalar routine on its own slice *view*, so the
    non-finite repair, the in-place corrections and the verdict bookkeeping
    are exactly the scalar path's, and the corrections land in the stacked
    array.
    """
    s = np.asarray(s)
    n_trials = s.shape[0]
    finite = np.isfinite(s).reshape(n_trials, -1).all(axis=1)
    sum1, _ = strided_sums(s, stride)
    res1 = np.asarray(s_check1, dtype=np.float64) - sum1
    if magnitude is None:
        mag = strided_sums(np.abs(s), stride)[0]
    else:
        mag = np.maximum(
            np.asarray(magnitude, dtype=np.float64), strided_sums(np.abs(s), stride)[0]
        )
    over = np.abs(res1) > _threshold(mag, atol, rtol)
    flagged = ~finite | over.reshape(n_trials, -1).any(axis=1)

    verdicts: list[ChecksumVerdict] = []
    for t in range(n_trials):
        if not flagged[t]:
            verdict = ChecksumVerdict()
            verdict.max_residual = float(np.max(np.abs(res1[t]))) if res1[t].size else 0.0
            verdicts.append(verdict)
            continue
        # The slice views keep the scalar routine's in-place semantics; the
        # original (pre-maximum) magnitude slice is forwarded because the
        # scalar routine applies the strided |S| floor itself.
        verdicts.append(
            verify_strided_checksums(
                s[t],
                s_check1[t],
                s_check2[t],
                stride=stride,
                atol=atol,
                rtol=rtol,
                magnitude=None if magnitude is None else magnitude[t],
            )
        )
    return verdicts
