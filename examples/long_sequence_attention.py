"""Long-sequence inference: why the fused EFTA kernel matters.

The decoupled operation-level framework materialises the O(n^2) score and
probability tensors; on a 40 GB A100 it runs out of memory at 16 K sequence
length for the large-model attention configuration, while the fused EFTA
kernel keeps an O(n) footprint (Figure 9).  This example walks the paper's
sweep with the hardware model, reporting simulated time, memory footprint and
the OOM point, and then runs the functional kernel on a moderately long
sequence to show the O(n) behaviour concretely.

Run with:  python examples/long_sequence_attention.py
"""

from __future__ import annotations

import numpy as np

from repro import AttentionConfig, AttentionCostModel, AttentionWorkload, build_scheme
from repro.attention import standard_attention

GIB = 1024**3


def sweep(heads: int, head_dim: int) -> None:
    print(f"\nAttention configuration: heads={heads}, head_dim={head_dim} "
          f"(hidden {heads * head_dim}), 16 K total tokens")
    print(f"{'seq_len':>8} {'EFTA ms':>9} {'EFTA GiB':>9} {'decoupled ms':>13} {'decoupled GiB':>14}")
    for seq_len in [512, 1024, 2048, 4096, 8192, 16384]:
        workload = AttentionWorkload.with_total_tokens(seq_len, heads=heads, head_dim=head_dim)
        model = AttentionCostModel(workload)
        efta = model.efta_breakdown(unified_verification=True)
        efta_mem = model.efta_peak_bytes() / GIB
        if model.decoupled_fits_in_memory():
            decoupled = f"{model.decoupled_ft_breakdown().total_time * 1e3:13.2f}"
            decoupled_mem = f"{model.decoupled_peak_bytes() / GIB:14.2f}"
        else:
            decoupled = f"{'OOM':>13}"
            decoupled_mem = f"{model.decoupled_peak_bytes() / GIB:13.2f}*"
        print(f"{seq_len:>8} {efta.total_time * 1e3:>9.2f} {efta_mem:>9.3f} {decoupled} {decoupled_mem}")
    print("  (* exceeds the 40 GB device capacity)")


def functional_long_sequence() -> None:
    print("\nFunctional check at sequence length 1024 (single head):")
    rng = np.random.default_rng(5)
    q = rng.standard_normal((1024, 64)).astype(np.float32)
    k = rng.standard_normal((1024, 64)).astype(np.float32)
    v = rng.standard_normal((1024, 64)).astype(np.float32)
    config = AttentionConfig(seq_len=1024, head_dim=64, block_size=128)
    output, report = build_scheme("efta_unified", config)(q, k, v)
    reference = standard_attention(q, k, v)
    print(f"  max |EFTA - standard| = {np.abs(output - reference).max():.2e}")
    print(f"  report: {report.summary()}")
    blocks = config.n_blocks
    per_block_floats = config.block_size * (config.head_dim + 2 * config.checksum_stride)
    print(f"  working set: {blocks} blocks x {per_block_floats * 4 / 1024:.1f} KiB "
          f"(independent of the 1024^2 score matrix)")


def main() -> None:
    sweep(heads=16, head_dim=64)
    sweep(heads=32, head_dim=128)
    functional_long_sequence()


if __name__ == "__main__":
    main()
