"""Fault-tolerant Transformer inference: a GPT-2-style model under injection.

Builds a scaled-down GPT-2-family Transformer on the protected layer stack
(EFTA attention, strided-ABFT linear layers, activation range restriction),
generates a few tokens greedily, and repeats the generation while injecting
one attention fault per forward pass.  The protected model produces the same
tokens; an unprotected model given the same faults may not.  Finally the
Figure-15 cost model reports the simulated A100 overhead of the protection for
the full-size models.

Run with:  python examples/transformer_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.fault import FaultInjector, FaultSite
from repro.transformer import GPT2_SMALL, TransformerCostModel, TransformerModel, model_zoo


def generate(model: TransformerModel, prompt: np.ndarray, steps: int, inject: bool) -> list[int]:
    tokens = prompt.copy()
    produced = []
    for step in range(steps):
        injector = None
        if inject:
            injector = FaultInjector.single_bit_flip(
                FaultSite.GEMM_QK, seed=100 + step, bit=14, dtype="fp16"
            )
        next_token, output = model.generate_token(tokens, injector=injector)
        if inject:
            assert output.report.detected_any or output.report.clean
        produced.append(int(next_token[0]))
        tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
    return produced


def main() -> None:
    config = GPT2_SMALL.scaled(hidden_dim=96, num_layers=3)
    model = TransformerModel(config, seed=42, attention_block_size=32)
    print(f"model: {config.name}, {config.num_layers} layers, hidden {config.hidden_dim}, "
          f"{model.num_parameters() / 1e6:.2f} M parameters")

    prompt = np.random.default_rng(0).integers(0, config.vocab_size, size=(1, 24))
    clean_tokens = generate(model, prompt, steps=6, inject=False)
    faulty_tokens = generate(model, prompt, steps=6, inject=True)
    print(f"tokens without faults:           {clean_tokens}")
    print(f"tokens with one SEU per forward: {faulty_tokens}")
    print(f"identical output under injection: {clean_tokens == faulty_tokens}")

    print("\nSimulated A100 inference-step cost of the full-size models (Figure 15):")
    print(f"{'model':<12} {'step (ms)':>10} {'detection':>10} {'correction':>11}")
    for full_config in model_zoo():
        report = TransformerCostModel(full_config, seq_len=512).report()
        print(
            f"{report.name:<12} {report.base_time * 1e3:>10.2f} "
            f"{report.detection_overhead:>9.1%} {report.correction_overhead:>10.1%}"
        )


if __name__ == "__main__":
    main()
