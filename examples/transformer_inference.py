"""Fault-tolerant Transformer inference: a GPT-2-style model under injection.

Builds a scaled-down GPT-2-family Transformer on the scheme-agnostic
protected layer stack, generates a few tokens greedily under every registered
protection scheme, and repeats the generation while injecting one attention
fault per forward pass.  The EFTA-protected models produce the same tokens;
the unprotected model given the same faults may not.  Finally the Figure-15
cost model reports the simulated A100 overhead of the protection for the
full-size models.

Run with:  python examples/transformer_inference.py
"""

from __future__ import annotations

import numpy as np

from repro import available_schemes
from repro.exec import ExperimentSpec, run_experiment
from repro.fault import FaultInjector, FaultSite
from repro.transformer import GPT2_SMALL, TransformerModel, model_zoo


def generate(model: TransformerModel, prompt: np.ndarray, steps: int, inject: bool) -> list[int]:
    tokens = prompt.copy()
    produced = []
    for step in range(steps):
        injector = None
        if inject:
            injector = FaultInjector.single_bit_flip(
                FaultSite.GEMM_QK, seed=100 + step, bit=14, dtype="fp16"
            )
        next_token, output = model.generate_token(tokens, injector=injector)
        produced.append(int(next_token[0]))
        tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
    return produced


def main() -> None:
    config = GPT2_SMALL.scaled(hidden_dim=96, num_layers=3)
    reference = TransformerModel(config, seed=42, attention_block_size=32)
    print(f"model: {config.name}, {config.num_layers} layers, hidden {config.hidden_dim}, "
          f"{reference.num_parameters() / 1e6:.2f} M parameters")

    prompt = np.random.default_rng(0).integers(0, config.vocab_size, size=(1, 24))
    clean_tokens = generate(reference, prompt, steps=6, inject=False)
    print(f"tokens without faults:            {clean_tokens}")
    print("\nOne SEU per forward pass, per protection scheme:")
    for scheme in available_schemes():
        model = TransformerModel(config, seed=42, attention_block_size=32, scheme=scheme)
        faulty_tokens = generate(model, prompt, steps=6, inject=True)
        verdict = "identical" if faulty_tokens == clean_tokens else "DIVERGED"
        print(f"  {scheme:<14} {faulty_tokens}  <- {verdict}")

    print("\nSimulated A100 inference-step cost of the full-size models (Figure 15):")
    print(f"{'model':<12} {'step (ms)':>10} {'detection':>10} {'correction':>11}")
    costs = run_experiment(
        ExperimentSpec(
            campaign="transformer_cost",
            n_trials=1,
            params={"seq_len": 512},
            grid={"model": [config.name for config in model_zoo()]},
            name="fig15-example",
        )
    )
    for entry in costs.points:
        report = entry.result
        print(
            f"{report['model']:<12} {report['base_time'] * 1e3:>10.2f} "
            f"{report['detection_overhead']:>9.1%} {report['correction_overhead']:>10.1%}"
        )


if __name__ == "__main__":
    main()
