"""Quickstart: protected attention in a dozen lines.

Builds the optimized end-to-end fault tolerant attention (EFTA) from the
protection-scheme registry by name, verifies it against standard attention,
injects a single bit flip into the first attention GEMM, and shows that the
kernel detects and corrects it transparently.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AttentionConfig, FaultInjector, FaultSite, available_schemes, build_scheme
from repro.attention import standard_attention


def main() -> None:
    rng = np.random.default_rng(0)
    batch, heads, seq_len, head_dim = 2, 4, 256, 64
    q = rng.standard_normal((batch, heads, seq_len, head_dim)).astype(np.float32)
    k = rng.standard_normal((batch, heads, seq_len, head_dim)).astype(np.float32)
    v = rng.standard_normal((batch, heads, seq_len, head_dim)).astype(np.float32)

    config = AttentionConfig(seq_len=seq_len, head_dim=head_dim, block_size=128)
    print(f"registered protection schemes: {available_schemes()}")
    attention = build_scheme("efta_unified", config)

    # 1. Fault-free run: identical (up to FP16 round-off) to standard attention.
    output, report = attention(q, k, v)
    reference = standard_attention(q, k, v)
    print(f"max |EFTA - standard attention| = {np.abs(output - reference).max():.2e}")
    print(f"fault-free report: {report.summary()}")

    # 2. Inject one single-event upset (an exponent-bit flip) into GEMM I.
    injector = FaultInjector.single_bit_flip(FaultSite.GEMM_QK, seed=7, bit=13, dtype="fp16")
    faulty_output, faulty_report = attention(q, k, v, injector=injector)
    record = faulty_report.injected[0]
    print(
        f"\ninjected fault: site={record.site}, element={record.index}, bit={record.bit}, "
        f"{record.original:.4f} -> {record.corrupted:.4f}"
    )
    print(f"fault report:   {faulty_report.summary()}")
    print(f"max |protected faulty run - reference| = {np.abs(faulty_output - reference).max():.2e}")

    # 3. Simulated A100 cost of this workload (what the paper's tables report).
    breakdown = attention.cost_breakdown(batch=batch, heads=heads)
    print(
        f"\nsimulated A100 time: {breakdown.total_time * 1e3:.3f} ms "
        f"(fault-tolerance overhead {100 * breakdown.overhead:.1f}%)"
    )


if __name__ == "__main__":
    main()
