"""Fault-injection campaign: measure detection and correction across pipeline stages.

Sweeps single-event upsets over every protected stage of the fused attention
kernel (GEMM I, exponentiation, GEMM II, rescale, normalisation, reduce-sum)
as one declarative campaign per stage on the parallel, resumable runner
(:mod:`repro.fault.runner`) -- a miniature version of the resilience study
behind Figures 12 and 14.

Run with:  python examples/fault_injection_campaign.py [--workers N]
                                                       [--trials N]
                                                       [--results-dir DIR]

With ``--results-dir`` every stage checkpoints its trials to a JSONL file, so
an interrupted sweep resumes where it stopped (and re-running a completed
sweep is instant).
"""

from __future__ import annotations

import argparse

from repro import FaultSite
from repro.fault.runner import CampaignSpec, run_campaign

SITES = [
    FaultSite.GEMM_QK,
    FaultSite.SUBTRACT_EXP,
    FaultSite.REDUCE_SUM,
    FaultSite.GEMM_PV,
    FaultSite.RESCALE,
    FaultSite.NORMALIZE,
]

#: Bit positions swept per representation (high mantissa through sign).
FP16_BITS = [8, 10, 12, 13, 14, 15]
FP32_BITS = [20, 23, 26, 28, 30, 31]


def site_spec(site: FaultSite, n_trials: int) -> CampaignSpec:
    fp16_site = site in (FaultSite.GEMM_QK, FaultSite.SUBTRACT_EXP)
    return CampaignSpec(
        campaign="efta_site_resilience",
        n_trials=n_trials,
        seed=1,
        params={
            "site": site.value,
            "bits": FP16_BITS if fp16_site else FP32_BITS,
            "dtype": "fp16" if fp16_site else "fp32",
            "seq_len": 192,
            "head_dim": 64,
            "block_size": 64,
        },
        name=f"site-{site.value}",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, help="worker processes per campaign")
    parser.add_argument("--trials", type=int, default=30, help="trials per pipeline stage")
    parser.add_argument(
        "--results-dir", default=None, help="checkpoint directory (enables resume)"
    )
    args = parser.parse_args(argv)

    print(
        f"{'site':<14} {'trials':>6} {'detected':>9} {'repaired':>9} "
        f"{'clean out':>10} {'max rel err':>12}"
    )
    print("-" * 66)
    for site in SITES:
        spec = site_spec(site, args.trials)
        results_path = (
            f"{args.results_dir}/{spec.label}.jsonl" if args.results_dir else None
        )
        result = run_campaign(spec, n_workers=args.workers, results_path=results_path)
        worst = max(o.output_rel_error for o in result.outcomes)
        clean = sum(1 for o in result.outcomes if o.output_rel_error < 0.02) / result.n_trials
        print(
            f"{site.value:<14} {result.n_trials:>6} {result.detection_rate:>8.0%} "
            f"{result.coverage:>8.0%} {clean:>9.0%} {worst:>12.3e}"
        )

    print(
        "\nNote: reduce-max faults are intentionally left to cancel (SNVR case 1); "
        "reduce-sum faults are range-restricted with an approximate restoration, so their "
        "residual error is bounded but not zero, exactly as in the paper's design."
    )


if __name__ == "__main__":
    main()
