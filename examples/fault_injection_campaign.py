"""Fault-injection campaign: measure detection and correction across pipeline stages.

Sweeps single-event upsets over every protected stage of the fused attention
kernel (GEMM I, exponentiation, GEMM II, rescale, normalisation, reduce-sum),
over a range of bit positions, and reports per-stage detection / correction
rates plus the residual output error -- a miniature version of the resilience
study behind Figures 12 and 14.

Run with:  python examples/fault_injection_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import AttentionConfig, EFTAttentionOptimized, FaultInjector, FaultSite
from repro.attention import standard_attention

SITES = [
    FaultSite.GEMM_QK,
    FaultSite.SUBTRACT_EXP,
    FaultSite.REDUCE_SUM,
    FaultSite.GEMM_PV,
    FaultSite.RESCALE,
    FaultSite.NORMALIZE,
]

#: Bit positions swept per representation (high mantissa through sign).
FP16_BITS = [8, 10, 12, 13, 14, 15]
FP32_BITS = [20, 23, 26, 28, 30, 31]


def main(trials_per_point: int = 5) -> None:
    rng = np.random.default_rng(1)
    seq_len, head_dim = 192, 64
    q = rng.standard_normal((seq_len, head_dim)).astype(np.float32)
    k = rng.standard_normal((seq_len, head_dim)).astype(np.float32)
    v = rng.standard_normal((seq_len, head_dim)).astype(np.float32)
    reference = standard_attention(q, k, v)

    config = AttentionConfig(seq_len=seq_len, head_dim=head_dim, block_size=64)
    attention = EFTAttentionOptimized(config)

    print(f"{'site':<14} {'trials':>6} {'detected':>9} {'repaired':>9} {'clean out':>10} {'max rel err':>12}")
    print("-" * 66)
    for site in SITES:
        fp16_site = site in (FaultSite.GEMM_QK, FaultSite.SUBTRACT_EXP)
        bits = FP16_BITS if fp16_site else FP32_BITS
        dtype = "fp16" if fp16_site else "fp32"
        trials = detected = repaired = clean_out = 0
        worst = 0.0
        # The normalisation runs once per row block (not per inner iteration),
        # so it is matched without a block constraint.
        block = None if site == FaultSite.NORMALIZE else (0, 1)
        for bit in bits:
            for seed in range(trials_per_point):
                injector = FaultInjector.single_bit_flip(
                    site, seed=seed, bit=bit, dtype=dtype, block=block
                )
                output, report = attention(q, k, v, injector=injector)
                trials += 1
                detected += int(report.detected_any)
                repaired += int(report.total_corrections > 0)
                rel_err = float(np.abs(output - reference).max() / np.abs(reference).max())
                worst = max(worst, rel_err)
                clean_out += int(rel_err < 0.02)
        print(
            f"{site.value:<14} {trials:>6} {detected / trials:>8.0%} {repaired / trials:>8.0%} "
            f"{clean_out / trials:>9.0%} {worst:>12.3e}"
        )

    print(
        "\nNote: reduce-max faults are intentionally left to cancel (SNVR case 1); "
        "reduce-sum faults are range-restricted with an approximate restoration, so their "
        "residual error is bounded but not zero, exactly as in the paper's design."
    )


if __name__ == "__main__":
    main()
