"""Fault-injection campaign: measure detection and correction across pipeline stages.

Sweeps single-event upsets over every protected stage of the fused attention
kernel (GEMM I, exponentiation, GEMM II, rescale, normalisation, reduce-sum)
as ONE declarative :class:`~repro.exec.spec.ExperimentSpec` -- the fault site
is a grid axis, and the whole sweep runs on any pluggable executor backend
(serial, shared process pool, async shard dispatch) -- a miniature version of
the resilience study behind Figures 12 and 14.

Run with:  python examples/fault_injection_campaign.py [--executor NAME]
                                                       [--workers N]
                                                       [--trials N]
                                                       [--results-dir DIR]

With ``--results-dir`` every stage checkpoints its trials to a JSONL file, so
an interrupted sweep resumes where it stopped (and re-running a completed
sweep is instant).  The equivalent spec file runs from the unified CLI::

    python -m repro run spec.json --executor process --workers 4 --results out/
"""

from __future__ import annotations

import argparse

from repro import FaultSite
from repro.exec import ExperimentSpec, available_executors, run_experiment

SITES = [
    FaultSite.GEMM_QK,
    FaultSite.SUBTRACT_EXP,
    FaultSite.REDUCE_SUM,
    FaultSite.GEMM_PV,
    FaultSite.RESCALE,
    FaultSite.NORMALIZE,
]


def site_sweep(n_trials: int) -> ExperimentSpec:
    """All six pipeline stages as one sweep grid (bits/dtype default per site)."""
    return ExperimentSpec(
        campaign="efta_site_resilience",
        n_trials=n_trials,
        seed=1,
        params={"seq_len": 192, "head_dim": 64, "block_size": 64},
        grid={"site": [site.value for site in SITES]},
        name="site-resilience",
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--executor",
        default="serial",
        choices=available_executors(),
        help="execution backend (all backends give bit-identical results)",
    )
    parser.add_argument("--workers", type=int, default=1, help="parallelism budget")
    parser.add_argument("--trials", type=int, default=30, help="trials per pipeline stage")
    parser.add_argument(
        "--results-dir", default=None, help="checkpoint directory (enables resume)"
    )
    args = parser.parse_args(argv)

    result = run_experiment(
        site_sweep(args.trials),
        executor=args.executor,
        n_workers=args.workers,
        results_path=args.results_dir,
    )

    print(
        f"{'site':<14} {'trials':>6} {'detected':>9} {'repaired':>9} "
        f"{'clean out':>10} {'max rel err':>12}"
    )
    print("-" * 66)
    for entry in result.points:
        campaign = entry.result
        worst = max(o.output_rel_error for o in campaign.outcomes)
        clean = sum(
            1 for o in campaign.outcomes if o.output_rel_error < 0.02
        ) / campaign.n_trials
        print(
            f"{entry.point['site']:<14} {campaign.n_trials:>6} "
            f"{campaign.detection_rate:>8.0%} {campaign.coverage:>8.0%} "
            f"{clean:>9.0%} {worst:>12.3e}"
        )

    print(
        "\nNote: reduce-max faults are intentionally left to cancel (SNVR case 1); "
        "reduce-sum faults are range-restricted with an approximate restoration, so their "
        "residual error is bounded but not zero, exactly as in the paper's design."
    )


if __name__ == "__main__":
    main()
